package service

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"balance/internal/model"
	"balance/internal/sbfile"
	"balance/internal/testutil"
	"balance/internal/wire"
)

// sbText renders a seeded random superblock as .sb text, the form requests
// carry it in.
func sbText(t *testing.T, seed int64, maxOps int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sb := testutil.RandomSuperblock(rng, maxOps)
	var buf strings.Builder
	if err := sbfile.Write(&buf, sb); err != nil {
		t.Fatalf("sbfile.Write: %v", err)
	}
	return buf.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestScheduleEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	req := &wire.ScheduleRequest{
		Superblock:      sbText(t, 1, 14),
		Machine:         "GP2",
		DeadlineMS:      5000,
		IncludeSchedule: true,
	}
	var resp wire.ScheduleResponse
	code, _, err := wire.Post(ctx, ts.Client(), ts.URL+"/v1/schedule", req, &resp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("schedule: code=%d err=%v", code, err)
	}
	if len(resp.Costs) == 0 || resp.Tightest <= 0 {
		t.Fatalf("schedule: empty result %+v", resp)
	}
	for name, c := range resp.Costs {
		if c < resp.Tightest-1e-9 {
			t.Errorf("%s cost %v below lower bound %v", name, c, resp.Tightest)
		}
	}
	if resp.Schedule == nil || len(resp.Schedule.Cycles) == 0 || resp.Schedule.Heuristic == "" {
		t.Fatalf("include_schedule: missing detail %+v", resp.Schedule)
	}
	if resp.Cached || resp.Coalesced {
		t.Errorf("first request reported cached=%v coalesced=%v", resp.Cached, resp.Coalesced)
	}

	// The identical request again must be served from the result cache.
	var again wire.ScheduleResponse
	if code, _, err = wire.Post(ctx, ts.Client(), ts.URL+"/v1/schedule", req, &again); err != nil || code != http.StatusOK {
		t.Fatalf("repeat: code=%d err=%v", code, err)
	}
	if !again.Cached {
		t.Errorf("repeat request not served from cache: %+v", again)
	}
	if again.Costs["Balance"] != resp.Costs["Balance"] {
		t.Errorf("cached cost %v != computed %v", again.Costs["Balance"], resp.Costs["Balance"])
	}
	if st := s.CacheStats(); st.Hits < 1 || st.Misses < 1 {
		t.Errorf("cache stats after hit: %+v", st)
	}
}

// TestScheduleCoalescing drives identical concurrent requests and requires
// the cache accounting to show exactly one computation: every other
// request either coalesced onto the in-flight leader or hit the resident
// entry it published.
func TestScheduleCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 64})
	req := &wire.ScheduleRequest{
		Superblock: sbText(t, 2, 16),
		Machine:    "FS6",
		DeadlineMS: 5000,
	}
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp wire.ScheduleResponse
			if code, _, err := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/schedule", req, &resp); err != nil || code != http.StatusOK {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent request failed: %v", err)
	}
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 computation for identical requests", st.Misses)
	}
	if st.Hits+st.Coalesced != n-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d", st.Hits, st.Coalesced, st.Hits+st.Coalesced, n-1)
	}
}

func TestBoundsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var resp wire.BoundsResponse
	code, _, err := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/bounds", &wire.BoundsRequest{
		Superblock: sbText(t, 3, 12),
		Machine:    "GP4",
		Triplewise: true,
		DeadlineMS: 5000,
	}, &resp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("bounds: code=%d err=%v", code, err)
	}
	for _, name := range []string{"CP", "Hu", "RJ", "LC", "Pairwise", "Triplewise"} {
		if _, present := resp.Bounds[name]; !present {
			t.Errorf("bound %q missing from %v", name, resp.Bounds)
		}
	}
	if resp.Tightest <= 0 {
		t.Errorf("tightest = %v", resp.Tightest)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	var resp wire.ExplainResponse
	code, _, err := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/explain", &wire.ExplainRequest{
		Superblock: sbText(t, 4, 12),
		Machine:    "GP2",
		Update:     "light",
	}, &resp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("explain: code=%d err=%v", code, err)
	}
	if len(resp.Decisions) == 0 || resp.Cost <= 0 {
		t.Fatalf("explain: empty result %+v", resp)
	}
}

// TestBadRequests checks that every caller error is a 400 whose body says
// what would have been valid.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	sb := sbText(t, 5, 8)
	cases := []struct {
		name string
		url  string
		req  any
		want string // substring of the error body
	}{
		{"unknown machine", "/v1/schedule", &wire.ScheduleRequest{Superblock: sb, Machine: "none"}, "available:"},
		{"machine names listed", "/v1/schedule", &wire.ScheduleRequest{Superblock: sb, Machine: "none"}, "GP2"},
		{"empty superblock", "/v1/schedule", &wire.ScheduleRequest{Machine: "GP2"}, "superblock"},
		{"malformed sb text", "/v1/schedule", &wire.ScheduleRequest{Superblock: "superblock x\nbogus\n", Machine: "GP2"}, "parse superblock"},
		{"index out of range", "/v1/schedule", &wire.ScheduleRequest{Superblock: sb, Index: 9, Machine: "GP2"}, "out of range"},
		{"unknown scheduler", "/v1/schedule", &wire.ScheduleRequest{Superblock: sb, Machine: "GP2", Schedulers: []string{"none"}}, "none"},
		{"unknown update policy", "/v1/explain", &wire.ExplainRequest{Superblock: sb, Machine: "GP2", Update: "eager"}, "per-op"},
		{"misspelled field", "/v1/bounds", &struct {
			Superblock string `json:"superblock"`
			Machine    string `json:"machine"`
			Bogus      bool   `json:"bogus"`
		}{sb, "GP2", true}, "bogus"},
	}
	for _, tc := range cases {
		code, _, err := wire.Post(ctx, ts.Client(), ts.URL+tc.url, tc.req, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (err %v)", tc.name, code, err)
			continue
		}
		var se *wire.StatusError
		if !asStatusError(err, &se) || !strings.Contains(se.Msg, tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func asStatusError(err error, out **wire.StatusError) bool {
	se, ok := err.(*wire.StatusError)
	if ok {
		*out = se
	}
	return ok
}

// TestOverloadReturns429 fills the admission window by hand (one held
// compute slot plus a full queue) and requires the next request to be
// rejected immediately with 429 and a Retry-After estimate.
func TestOverloadReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.slots <- struct{}{} // occupy the only compute slot
	s.admitted.Store(s.limit)
	defer func() {
		<-s.slots
		s.admitted.Store(0)
	}()

	code, hdr, err := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/schedule", &wire.ScheduleRequest{
		Superblock: sbText(t, 6, 8),
		Machine:    "GP2",
	}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload: code = %d, want 429 (err %v)", code, err)
	}
	var se *wire.StatusError
	if !asStatusError(err, &se) || !strings.Contains(se.Msg, "queue full") {
		t.Errorf("overload error = %v", err)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive estimate", ra)
	}
}

// TestQueuedDeadlineReturns504: a request whose deadline expires while it
// waits for a compute slot is answered 504 without computing.
func TestQueuedDeadlineReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.slots <- struct{}{} // occupy the only compute slot so the request queues
	defer func() { <-s.slots }()

	code, _, err := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/schedule", &wire.ScheduleRequest{
		Superblock: sbText(t, 7, 8),
		Machine:    "GP2",
		DeadlineMS: 30,
	}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued deadline: code = %d, want 504 (err %v)", code, err)
	}
	var se *wire.StatusError
	if !asStatusError(err, &se) || !strings.Contains(se.Msg, "queued") {
		t.Errorf("queued deadline error = %v", err)
	}
}

func TestDrainRejectsAndWaits(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with no traffic: %v", err)
	}
	code, _, _ := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/schedule", &wire.ScheduleRequest{
		Superblock: sbText(t, 8, 8),
		Machine:    "GP2",
	}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: code = %d, want 503", code)
	}
	var h wire.Health
	if code, _, err := wire.Get(context.Background(), ts.Client(), ts.URL+"/healthz", &h); err != nil || code != http.StatusOK {
		t.Fatalf("healthz during drain: code=%d err=%v", code, err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

// TestReadinessFlipsBeforeListenerStops pins the liveness/readiness
// split and its ordering: the moment StartDrain is called — before any
// listener teardown, before in-flight work finishes — /readyz must
// answer 503 while /healthz keeps answering 200. This is the window in
// which load balancers stop routing without seeing connection errors.
func TestReadinessFlipsBeforeListenerStops(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	var ready wire.Ready
	if code, _, err := wire.Get(context.Background(), ts.Client(), ts.URL+"/readyz", &ready); err != nil || code != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz before drain: code=%d ready=%+v err=%v", code, ready, err)
	}

	// Readiness flips the instant the drain begins; the listener is
	// still fully up (this request goes through it).
	s.StartDrain()
	code, _, err := wire.Get(context.Background(), ts.Client(), ts.URL+"/readyz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: code = %d, want 503 (err %v)", code, err)
	}
	var se *wire.StatusError
	if !asStatusError(err, &se) || !strings.Contains(se.Msg, "draining") {
		t.Errorf("readyz drain error = %v", err)
	}
	// Liveness is unaffected: the process must not be restarted while
	// it finishes in-flight work.
	var h wire.Health
	if code, _, err := wire.Get(context.Background(), ts.Client(), ts.URL+"/healthz", &h); err != nil || code != http.StatusOK {
		t.Fatalf("healthz during drain: code=%d err=%v", code, err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
	// New compute requests are already rejected in this window.
	if code, _, _ := wire.Post(context.Background(), ts.Client(), ts.URL+"/v1/schedule", &wire.ScheduleRequest{
		Superblock: sbText(t, 9, 8),
		Machine:    "GP2",
	}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("schedule during drain: code = %d, want 503", code)
	}
	// The full Drain still completes cleanly afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after StartDrain: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheCapacity: 32})
	var h wire.Health
	code, _, err := wire.Get(context.Background(), ts.Client(), ts.URL+"/healthz", &h)
	if err != nil || code != http.StatusOK {
		t.Fatalf("healthz: code=%d err=%v", code, err)
	}
	if h.Status != "ok" || h.Goroutines <= 0 || h.Cache.Capacity != 32 {
		t.Errorf("healthz body: %+v", h)
	}
}

// TestDeadlineResolution covers the default/clamp ladder in isolation.
func TestDeadlineResolution(t *testing.T) {
	s := New(Config{
		Workers:         1,
		DefaultDeadline: 2 * time.Second,
		MaxDeadline:     10 * time.Second,
	})
	cases := []struct {
		ms   int64
		want time.Duration
	}{
		{0, 2 * time.Second}, // default applies
		{500, 500 * time.Millisecond},
		{60000, 10 * time.Second}, // clamped to max
	}
	for _, tc := range cases {
		if got := s.deadline(tc.ms); got != tc.want {
			t.Errorf("deadline(%d) = %v, want %v", tc.ms, got, tc.want)
		}
	}
	unlimited := New(Config{Workers: 1})
	if got := unlimited.deadline(0); got != 0 {
		t.Errorf("deadline(0) with no defaults = %v, want 0", got)
	}
}

// TestSharedCacheAcrossServers: two servers constructed over one Memo see
// each other's results — the Config.Cache contract.
func TestSharedCacheAcrossServers(t *testing.T) {
	s1, ts1 := newTestServer(t, Config{Workers: 1})
	_, ts2 := newTestServer(t, Config{Workers: 1, Cache: s1.memo})
	req := &wire.ScheduleRequest{Superblock: sbText(t, 9, 10), Machine: "GP1", DeadlineMS: 5000}
	ctx := context.Background()
	if code, _, err := wire.Post(ctx, ts1.Client(), ts1.URL+"/v1/schedule", req, nil); err != nil || code != 200 {
		t.Fatalf("first server: code=%d err=%v", code, err)
	}
	var resp wire.ScheduleResponse
	if code, _, err := wire.Post(ctx, ts2.Client(), ts2.URL+"/v1/schedule", req, &resp); err != nil || code != 200 {
		t.Fatalf("second server: code=%d err=%v", code, err)
	}
	if !resp.Cached {
		t.Errorf("second server did not hit the shared cache: %+v", resp)
	}
}

func TestMachineCaseAndWhitespace(t *testing.T) {
	_, _, err := resolveInput(sbText(t, 10, 8), 0, " fs6 ")
	if err != nil {
		t.Errorf("resolveInput with ' fs6 ': %v", err)
	}
	_, _, err = resolveInput(sbText(t, 10, 8), 0, "bogus")
	if err == nil || !strings.Contains(err.Error(), model.MachineNames()[0]) {
		t.Errorf("unknown machine error should list names, got %v", err)
	}
}
