// Package cliutil wires the telemetry layer into the cmd tools: the shared
// -metrics / -trace / -debug-addr flags, metrics flushing on every exit
// path, and cancellation-aware exit codes (SIGINT exits 130 with a clean
// one-line message instead of a spurious failure report).
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"balance/internal/telemetry"

	// Serve live profiles at /debug/pprof/ on the -debug-addr server
	// (handlers register on http.DefaultServeMux at import; /debug/vars
	// comes with the expvar import inside internal/telemetry).
	_ "net/http/pprof"
)

// DebugHandler returns the process debug surface — expvar (including the
// live telemetry snapshot) at /debug/vars, pprof at /debug/pprof/, and
// the Prometheus exposition at /metrics — for mounting on a service mux.
// The expvar/pprof handlers live on http.DefaultServeMux (registered by
// the expvar and pprof imports); publishing the telemetry bridge here
// keeps callers from having to know that detail. sbserve mounts this
// under /debug/ so one port serves both the API and the profiling
// surface; -debug-addr remains available for a separate port.
func DebugHandler() http.Handler {
	telemetry.PublishExpvar(telemetry.Default())
	registerMetricsOnce()
	return http.DefaultServeMux
}

// registerMetricsOnce mounts /metrics on the default mux exactly once
// (DebugHandler and Start may both run in one process).
var registerMetricsOnce = sync.OnceFunc(func() {
	http.Handle("GET /metrics", telemetry.PromWriter{}.Handler())
})

// Obs carries one tool's observability configuration. Create it with
// Flags before flag.Parse; Start after; and route every exit through
// Fatal/Close so an interrupted run still reports what it did.
type Obs struct {
	tool          string
	metrics       string
	trace         string
	debugAddr     string
	profileDir    string
	profilePeriod time.Duration
	profileKeep   int
	onExit        []func() error
	snapshot      func() *telemetry.Snapshot
	// root is the tool's process-root span, started lazily by Context
	// and ended by Flush, so merged multi-process timelines show one
	// covering span per process.
	root        telemetry.Span
	rootStarted bool
}

// SetSnapshot overrides the source of the -metrics summary written on
// exit (default: this process's registry). The distributed coordinator
// uses it to write the merged coordinator+worker snapshot instead of its
// own slice of the work.
func (o *Obs) SetSnapshot(fn func() *telemetry.Snapshot) { o.snapshot = fn }

// OnExit registers fn to run on every exit path — Close and Fatal both
// route through it exactly once, before the -metrics snapshot is written.
// The tools use it to flush evaluation checkpoints, so an interrupted or
// failing run still persists the work it completed. Errors are reported to
// stderr but do not change the exit code.
func (o *Obs) OnExit(fn func() error) {
	o.onExit = append(o.onExit, fn)
}

// Flags registers the observability flags — -metrics, -trace, and
// -debug-addr — on the default flag set and returns the tool's Obs.
// Every tool gets -debug-addr: a stuck batch run is exactly when an
// operator wants live pprof and a /metrics scrape.
func Flags(tool string) *Obs {
	o := &Obs{tool: tool}
	flag.StringVar(&o.metrics, "metrics", "",
		"write a JSON telemetry summary on exit to `file` (- for stdout)")
	flag.StringVar(&o.trace, "trace", "",
		"write span and progress events to `file` (.json: Chrome trace-event for ui.perfetto.dev; otherwise JSON lines)")
	flag.StringVar(&o.debugAddr, "debug-addr", "",
		"serve expvar, pprof, and Prometheus /metrics on `addr` (e.g. localhost:6060)")
	flag.StringVar(&o.profileDir, "profile-dir", "",
		"write rotating CPU and heap profiles into `dir` (continuous profiling with goroutine labels; see -profile-period and -profile-keep)")
	flag.DurationVar(&o.profilePeriod, "profile-period", 30*time.Second,
		"length of each continuous-profiling window")
	flag.IntVar(&o.profileKeep, "profile-keep", 8,
		"continuous-profiling windows to keep per profile kind")
	return o
}

// Context returns ctx carrying the tool's root span, starting that span
// on first call. Spans the tool opens under the returned context nest
// beneath one per-process root, which is what lets sbtrace group each
// process's work under a single covering lane. Without a trace sink the
// root is inert and ctx comes back unchanged.
func (o *Obs) Context(ctx context.Context) context.Context {
	if !o.rootStarted {
		o.rootStarted = true
		o.root, _ = telemetry.Default().StartSpanCtx(ctx, o.tool)
	}
	if sc := o.root.Context(); sc.Valid() {
		return telemetry.ContextWithSpan(ctx, sc)
	}
	return ctx
}

// Start opens the trace sink and the debug server, as configured. Call it
// once, after flag.Parse.
//
// The trace writer's teardown (remove the sink, finalize the exporter,
// close the file) is registered as the first OnExit hook, so every exit
// path — Close, Fatal, and in particular SIGINT routed through Fatal —
// leaves a complete, parseable trace file behind. A ".json" path selects
// the Chrome trace-event exporter (load the file at ui.perfetto.dev);
// any other extension (conventionally ".jsonl") selects the line-
// delimited event stream.
func (o *Obs) Start() error {
	// Scatter this process's span IDs so independently-started tools
	// (sbload against sbserve, say) never collide when their trace
	// files are merged. Coordinated fleets override this: the dist
	// coordinator deals each worker a disjoint range above 1<<40, and
	// SeedSpanIDs is forward-only, so the later seed wins.
	telemetry.SeedSpanIDsUnique()
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		if strings.HasSuffix(o.trace, ".json") {
			sink := telemetry.NewTraceEventSink(f)
			telemetry.Default().SetSink(sink)
			o.OnExit(func() error {
				telemetry.Default().SetSink(nil)
				err := sink.Close()
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				return err
			})
		} else {
			telemetry.Default().SetSink(telemetry.NewJSONLSink(f))
			o.OnExit(func() error {
				telemetry.Default().SetSink(nil)
				return f.Close()
			})
		}
	}
	if o.profileDir != "" {
		stop, err := startProfiler(o.profileDir, o.profilePeriod, o.profileKeep)
		if err != nil {
			return err
		}
		o.OnExit(stop)
	}
	if o.debugAddr != "" {
		telemetry.PublishExpvar(telemetry.Default())
		registerMetricsOnce()
		ln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%s: debug server at http://%s/metrics, /debug/vars, and /debug/pprof/\n",
			o.tool, ln.Addr())
		srv := &http.Server{}
		go srv.Serve(ln) //nolint:errcheck // best-effort debug endpoint
	}
	return nil
}

// Flush runs the OnExit hooks (trace teardown first, then whatever the
// tool registered, e.g. checkpoint flushes) and writes the -metrics
// snapshot. Safe to call on every exit path (each step runs at most
// once).
func (o *Obs) Flush() {
	// End the process-root span before the first hook tears the trace
	// sink down, so the root's duration makes it into the file.
	if o.rootStarted {
		o.rootStarted = false
		o.root.End()
		o.root = telemetry.Span{}
	}
	for _, fn := range o.onExit {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: on exit: %v\n", o.tool, err)
		}
	}
	o.onExit = nil
	if o.metrics != "" {
		w := os.Stdout
		if o.metrics != "-" {
			f, err := os.Create(o.metrics)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: -metrics: %v\n", o.tool, err)
				o.metrics = ""
				return
			}
			defer f.Close()
			w = f
		}
		snap := o.snapshot
		if snap == nil {
			snap = telemetry.Default().Snapshot
		}
		if err := snap().WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "%s: -metrics: %v\n", o.tool, err)
		}
		o.metrics = ""
	}
}

// Close flushes telemetry at the end of a successful run.
func (o *Obs) Close() { o.Flush() }

// Fatal flushes telemetry and exits. Cancellation (SIGINT/SIGTERM via
// signal.NotifyContext, or a deadline) is not a failure: it prints a
// one-line "interrupted" message and exits 130 (128+SIGINT), so scripts
// can tell an interrupted run from a broken one — and the -metrics
// summary still reports what the run did up to that point.
func (o *Obs) Fatal(err error) {
	o.Flush()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", o.tool)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", o.tool, err)
	os.Exit(1)
}
