package cliutil

import (
	"bytes"
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"balance/internal/telemetry"
)

// TestProfilerWindowsAndRotation runs the continuous profiler with a
// tiny window, lets several windows elapse, stops it, and asserts every
// surviving file is a complete gzip (the SIGINT guarantee: stop ends
// the in-flight window instead of truncating it) and that rotation
// pruned down to the keep limit.
func TestProfilerWindowsAndRotation(t *testing.T) {
	dir := t.TempDir()
	const keep = 2
	stop, err := startProfiler(dir, 20*time.Millisecond, keep)
	if err != nil {
		t.Fatal(err)
	}
	// Burn CPU so the profile windows have samples to write.
	deadline := time.Now().Add(150 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x += x*3 + 1
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		kind := strings.SplitN(e.Name(), "-", 2)[0]
		counts[kind]++
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || binary.BigEndian.Uint16(data[:2]) != 0x1f8b {
			t.Errorf("%s is not gzip-framed (torn profile?)", e.Name())
		}
	}
	if counts["cpu"] == 0 || counts["heap"] == 0 {
		t.Fatalf("profile kinds seen: %v, want both cpu and heap", counts)
	}
	// The final in-flight window may land after its rotation pass, so
	// allow keep+1.
	for kind, n := range counts {
		if n > keep+1 {
			t.Errorf("%s windows on disk = %d, want <= %d", kind, n, keep+1)
		}
	}
}

// TestObsContextRootSpan asserts Context attaches one process-root span
// that Flush ends into the trace file before sink teardown.
func TestObsContextRootSpan(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&buf))

	o := &Obs{tool: "sbtest"}
	o.OnExit(func() error {
		reg.SetSink(nil)
		return nil
	})
	ctx := o.Context(context.Background())
	sc := telemetry.SpanFromContext(ctx)
	if !sc.Valid() {
		t.Fatal("Context attached no span despite an active sink")
	}
	if ctx2 := o.Context(context.Background()); telemetry.SpanFromContext(ctx2) != sc {
		t.Error("second Context call minted a different root span")
	}
	o.Flush()

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range events {
		if events[i].Name == "sbtest" && events[i].Span == sc.Span {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace file lacks the ended root span; events: %+v", events)
	}
}

// TestObsContextNoSink asserts Context is a no-op without a sink.
func TestObsContextNoSink(t *testing.T) {
	o := &Obs{tool: "sbtest"}
	ctx := o.Context(context.Background())
	if sc := telemetry.SpanFromContext(ctx); sc.Valid() {
		t.Fatalf("Context attached span %+v without a sink", sc)
	}
	o.Flush() // must not panic ending the inert root
}
