package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// startProfiler begins continuous profiling into dir: every period it
// finishes one CPU-profile window and one heap snapshot, each a
// complete pprof file, and prunes all but the newest keep files of each
// kind. The returned stop function ends the in-flight CPU window early
// (still producing a complete file — this is what makes SIGINT-routed
// exits safe), waits for the loop to drain, and reports the first
// write error the loop hit.
//
// Window files are numbered (cpu-000001.pb.gz, heap-000001.pb.gz, …) so
// lexical order is chronological order; `go tool pprof` merges globs of
// them directly. Goroutine labels (endpoint, trace, dist_unit,
// dist_worker, exact_worker) recorded by the service, dist, and exact
// layers appear as pprof tags in the CPU windows.
func startProfiler(dir string, period time.Duration, keep int) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("-profile-dir: %w", err)
	}
	if period <= 0 {
		period = 30 * time.Second
	}
	if keep <= 0 {
		keep = 8
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var loopErr error
	go func() {
		defer close(done)
		for seq := 1; ; seq++ {
			if err := profileWindow(dir, period, seq, stop); err != nil {
				loopErr = err
				return
			}
			pruneProfiles(dir, "cpu-", keep)
			pruneProfiles(dir, "heap-", keep)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() {
			close(stop)
			<-done
		})
		return loopErr
	}, nil
}

// profileWindow writes one complete CPU window plus one heap snapshot.
// A stop signal mid-window shortens the window instead of truncating
// the file.
func profileWindow(dir string, period time.Duration, seq int, stop <-chan struct{}) error {
	cf, err := os.Create(filepath.Join(dir, fmt.Sprintf("cpu-%06d.pb.gz", seq)))
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return err
	}
	t := time.NewTimer(period)
	select {
	case <-stop:
		t.Stop()
	case <-t.C:
	}
	pprof.StopCPUProfile()
	if err := cf.Close(); err != nil {
		return err
	}
	hf, err := os.Create(filepath.Join(dir, fmt.Sprintf("heap-%06d.pb.gz", seq)))
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(hf, 0); err != nil {
		hf.Close()
		return err
	}
	return hf.Close()
}

// pruneProfiles removes all but the newest keep prefix-named files.
// Sequence numbers are zero-padded, so lexical sort is age order.
func pruneProfiles(dir, prefix string, keep int) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), prefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names[:max(0, len(names)-keep)] {
		os.Remove(filepath.Join(dir, n)) //nolint:errcheck // best-effort rotation
	}
}
