// Package wire defines the JSON request/response vocabulary of the
// scheduling service and the encode/decode helpers shared by the server
// (internal/service behind cmd/sbserve) and its clients (cmd/sbload, test
// drivers). Superblocks travel as .sb text (see internal/sbfile) embedded
// in a JSON string, so both sides reuse the fuzz-hardened parser instead
// of a second structural encoding.
package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"balance/internal/core"
)

// MaxBodyBytes bounds a decoded request or response body. Superblocks of a
// few thousand operations encode well under this; anything larger is a
// malformed or hostile request.
const MaxBodyBytes = 4 << 20

// ScheduleRequest asks for a full evaluation of one superblock: lower
// bounds plus every requested scheduler's cost.
type ScheduleRequest struct {
	// Superblock is the .sb-format text of the input. When it contains
	// several superblocks, Index selects one (default 0).
	Superblock string `json:"superblock"`
	Index      int    `json:"index,omitempty"`
	// Machine names the configuration (GP1, GP2, GP4, FS4, FS6, FS8).
	Machine string `json:"machine"`
	// Schedulers lists registry heuristics to run (default: the paper's
	// six primaries). Best additionally reports the best-of-127 meta-column.
	Schedulers []string `json:"schedulers,omitempty"`
	Best       bool     `json:"best,omitempty"`
	// Triplewise enables the triplewise bound stage.
	Triplewise bool `json:"triplewise,omitempty"`
	// DeadlineMS is the per-request deadline in milliseconds (0 uses the
	// server default). The server maps it onto a quantized computation
	// budget: an expired budget degrades the bound ladder instead of
	// failing the request.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// IncludeSchedule additionally returns the cheapest heuristic's full
	// issue-cycle assignment (computed fresh, outside the result cache).
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// ScheduleDetail is one schedule's issue-cycle assignment.
type ScheduleDetail struct {
	Heuristic string  `json:"heuristic"`
	Cost      float64 `json:"cost"`
	// Cycles[v] is the issue cycle of operation v.
	Cycles []int `json:"cycles"`
}

// ScheduleResponse is the evaluation of one superblock on one machine.
type ScheduleResponse struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	// Costs maps heuristic name to the weighted completion time of its
	// schedule (plus "Best" when requested).
	Costs map[string]float64 `json:"costs"`
	// Tightest is the best lower bound; Degraded how far the bound ladder
	// was cut by the deadline budget (0 = full ladder).
	Tightest float64 `json:"tightest"`
	Degraded int     `json:"degraded"`
	// Trivial is true when every scheduler achieved the tightest bound.
	Trivial bool `json:"trivial"`
	// Cached: served from the shared result cache. Coalesced: shared an
	// identical in-flight computation (singleflight). Both false: this
	// request ran the computation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// ElapsedMS is the server-side handling time, queue wait included.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Schedule is present when IncludeSchedule was set.
	Schedule *ScheduleDetail `json:"schedule,omitempty"`
}

// BoundsRequest asks for the lower-bound set only.
type BoundsRequest struct {
	Superblock string `json:"superblock"`
	Index      int    `json:"index,omitempty"`
	Machine    string `json:"machine"`
	Triplewise bool   `json:"triplewise,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// BoundsResponse reports every superblock-level lower bound.
type BoundsResponse struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	// Bounds maps bound name (CP, Hu, RJ, LC, Pairwise, Triplewise) to its
	// weighted-completion value; Tightest is their maximum.
	Bounds    map[string]float64 `json:"bounds"`
	Tightest  float64            `json:"tightest"`
	Degraded  int                `json:"degraded"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// ExplainRequest asks for a Balance run with the decision-explain channel
// attached.
type ExplainRequest struct {
	Superblock string `json:"superblock"`
	Index      int    `json:"index,omitempty"`
	Machine    string `json:"machine"`
	// Update selects the dynamic-bound update policy: "per-op" (default),
	// "light", or "cycle". NoTradeoff disables the pairwise tradeoffs
	// (the Table-7 ablation).
	Update     string `json:"update,omitempty"`
	NoTradeoff bool   `json:"no_tradeoff,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// ExplainResponse carries the schedule cost and the versioned per-decision
// records (see core.Decision for the schema).
type ExplainResponse struct {
	Name      string          `json:"name"`
	Machine   string          `json:"machine"`
	Cost      float64         `json:"cost"`
	Decisions []core.Decision `json:"decisions"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// CacheHealth is the shared result cache's accounting, as exposed by
// /healthz.
type CacheHealth struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// WindowHealth summarizes the rolling request window (the last minute
// with the default geometry): live throughput, latency quantiles, and the
// 5xx ratio. Quantiles are log-bucket upper bounds, like every histogram
// estimate in the system.
type WindowHealth struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Count      int64   `json:"count"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	ErrorRatio float64 `json:"error_ratio"`
}

// SLOHealth is one objective's burn-rate evaluation: how fast the error
// budget is being spent over the long (full window) and fast (most
// recent intervals) horizons. OK is BurnLong ≤ 1.
type SLOHealth struct {
	Objective string  `json:"objective"`
	BurnLong  float64 `json:"burn_long"`
	BurnFast  float64 `json:"burn_fast"`
	OK        bool    `json:"ok"`
}

// Health is the /healthz body.
type Health struct {
	// Status is "ok" while serving, "draining" once shutdown began.
	Status string `json:"status"`
	// InFlight counts requests holding a compute slot; Queued counts
	// admitted requests (waiting + running) against the admission limit.
	// Workers is the slot-pool width (InFlight/Workers is slot occupancy)
	// and AdmitLimit the admission bound Queued is measured against.
	InFlight   int64 `json:"in_flight"`
	Queued     int64 `json:"queued"`
	Workers    int   `json:"workers"`
	AdmitLimit int64 `json:"admit_limit"`
	// Goroutines is runtime.NumGoroutine — load drivers watch it for leak
	// detection across a soak.
	Goroutines int         `json:"goroutines"`
	Cache      CacheHealth `json:"cache"`
	// Window reports the rolling request window; SLO the configured
	// objectives' burn rates (absent when none are configured).
	Window   *WindowHealth `json:"window,omitempty"`
	SLO      []SLOHealth   `json:"slo,omitempty"`
	UptimeMS int64         `json:"uptime_ms"`
}

// Ready is the 200 body of GET /readyz. Readiness is distinct from the
// liveness /healthz reports: a draining server is alive (healthz 200)
// but not ready (readyz 503), so orchestrators stop routing to it
// without restarting it.
type Ready struct {
	Ready bool `json:"ready"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}

// StatusError is the client-side form of a non-2xx response: the HTTP
// status code plus the decoded Error body.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Msg)
}

// DecodeJSON strictly decodes one JSON value from r into v: unknown fields
// are rejected (so typos in request bodies produce self-describing 400s
// instead of silently-ignored options), trailing garbage is an error, and
// reads are capped at MaxBodyBytes.
func DecodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("wire: trailing data after JSON body")
	}
	return nil
}

// WriteJSON writes v as the JSON body of an HTTP response with the given
// status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

// WriteError writes a formatted Error body with the given status code.
func WriteError(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, Error{Error: fmt.Sprintf(format, args...)})
}

// Post sends in as a JSON POST to url and decodes the 2xx response body
// into out (out may be nil to discard it). Non-2xx responses decode the
// Error body and return it as a *StatusError alongside the status code and
// response headers (Retry-After for 429s); transport and decoding failures
// return a zero status.
func Post(ctx context.Context, hc *http.Client, url string, in, out any) (int, http.Header, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, nil, fmt.Errorf("wire: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	injectTrace(ctx, req.Header)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	observeServerTime(resp)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e Error
		if derr := DecodeJSON(resp.Body, &e); derr != nil || e.Error == "" {
			e.Error = resp.Status
		}
		return resp.StatusCode, resp.Header, &StatusError{Code: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return resp.StatusCode, resp.Header, nil
	}
	if err := DecodeJSON(resp.Body, out); err != nil {
		return resp.StatusCode, resp.Header, fmt.Errorf("wire: decode response: %w", err)
	}
	return resp.StatusCode, resp.Header, nil
}

// Get fetches url and decodes the 2xx JSON body into out, with the same
// error contract as Post.
func Get(ctx context.Context, hc *http.Client, url string, out any) (int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	injectTrace(ctx, req.Header)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	observeServerTime(resp)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e Error
		if derr := DecodeJSON(resp.Body, &e); derr != nil || e.Error == "" {
			e.Error = resp.Status
		}
		return resp.StatusCode, resp.Header, &StatusError{Code: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return resp.StatusCode, resp.Header, nil
	}
	if err := DecodeJSON(resp.Body, out); err != nil {
		return resp.StatusCode, resp.Header, fmt.Errorf("wire: decode response: %w", err)
	}
	return resp.StatusCode, resp.Header, nil
}
