package wire

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"balance/internal/core"
)

// TestRoundTrip encodes every wire type through its JSON form and back and
// requires the result to be identical — the contract that lets sbserve and
// sbload (and any other client) share these structs.
func TestRoundTrip(t *testing.T) {
	cases := []any{
		&ScheduleRequest{
			Superblock: "superblock x\nop 0 Int\nbranch 0 0.3 after 0\n",
			Index:      1, Machine: "GP2",
			Schedulers: []string{"Balance", "CP"}, Best: true,
			Triplewise: true, DeadlineMS: 250, IncludeSchedule: true,
		},
		&ScheduleResponse{
			Name: "x", Machine: "GP2",
			Costs:    map[string]float64{"Balance": 12.5, "Best": 12},
			Tightest: 11.75, Degraded: 1, Trivial: false,
			Cached: true, Coalesced: false, ElapsedMS: 3.25,
			Schedule: &ScheduleDetail{Heuristic: "Balance", Cost: 12.5, Cycles: []int{0, 1, 1, 3}},
		},
		&BoundsRequest{Superblock: "sb", Machine: "FS6", Triplewise: true, DeadlineMS: 50},
		&BoundsResponse{
			Name: "x", Machine: "FS6",
			Bounds:   map[string]float64{"CP": 9, "Pairwise": 11.5},
			Tightest: 11.5, Degraded: 2, ElapsedMS: 0.5,
		},
		&ExplainRequest{Superblock: "sb", Machine: "GP4", Update: "light", NoTradeoff: true},
		&ExplainResponse{
			Name: "x", Machine: "GP4", Cost: 7,
			Decisions: []core.Decision{{Version: core.ExplainVersion, Seq: 0, Cycle: 2, Picked: 3, Rank: 1.5}},
			ElapsedMS: 1,
		},
		&Health{
			Status: "ok", InFlight: 3, Queued: 7, Goroutines: 42,
			Cache:    CacheHealth{Hits: 10, Misses: 2, Coalesced: 5, Evictions: 1, Size: 2, Capacity: 64},
			UptimeMS: 1234,
		},
		&Error{Error: "unknown machine"},
	}
	for _, in := range cases {
		rec := httptest.NewRecorder()
		WriteJSON(rec, http.StatusOK, in)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%T: Content-Type = %q", in, ct)
		}
		out := reflect.New(reflect.TypeOf(in).Elem()).Interface()
		if err := DecodeJSON(rec.Body, out); err != nil {
			t.Errorf("%T: decode: %v", in, err)
			continue
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T round trip:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

func TestDecodeStrictness(t *testing.T) {
	var req ScheduleRequest
	if err := DecodeJSON(strings.NewReader(`{"machine":"GP2","dedline_ms":5}`), &req); err == nil {
		t.Error("misspelled field was silently ignored")
	}
	if err := DecodeJSON(strings.NewReader(`{"machine":"GP2"} trailing`), &req); err == nil {
		t.Error("trailing garbage accepted")
	}
	if err := DecodeJSON(strings.NewReader(`{"machine":"GP2"}`), &req); err != nil {
		t.Errorf("valid body rejected: %v", err)
	}
}

func TestPostErrorContract(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			var req ScheduleRequest
			if err := DecodeJSON(r.Body, &req); err != nil {
				WriteError(w, http.StatusBadRequest, "decode: %v", err)
				return
			}
			WriteJSON(w, http.StatusOK, ScheduleResponse{Name: "x", Machine: req.Machine})
		case "/busy":
			w.Header().Set("Retry-After", "2")
			WriteError(w, http.StatusTooManyRequests, "queue full")
		default:
			WriteError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
		}
	}))
	defer srv.Close()
	ctx := context.Background()

	var resp ScheduleResponse
	code, _, err := Post(ctx, srv.Client(), srv.URL+"/ok", &ScheduleRequest{Machine: "GP2"}, &resp)
	if err != nil || code != http.StatusOK || resp.Machine != "GP2" {
		t.Fatalf("Post ok: code=%d resp=%+v err=%v", code, resp, err)
	}

	code, hdr, err := Post(ctx, srv.Client(), srv.URL+"/busy", &ScheduleRequest{}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("busy: code = %d, want 429", code)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests || !strings.Contains(se.Msg, "queue full") {
		t.Fatalf("busy: err = %v, want StatusError{429, queue full}", err)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Errorf("busy: Retry-After = %q, want 2", hdr.Get("Retry-After"))
	}

	if _, _, err := Get(ctx, srv.Client(), srv.URL+"/gone", nil); err == nil {
		t.Error("Get on 404 returned nil error")
	}
}
