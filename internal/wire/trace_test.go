package wire

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"balance/internal/telemetry"
)

// TestTracePropagation drives a real request through Post with a span
// context on the ctx and asserts the three wire-level contracts: the
// SB-Trace header arrives and extracts to the client's span context, the
// SB-Time header comes back, and the client records one trace.clock
// instant per host (not per request).
func TestTracePropagation(t *testing.T) {
	var gotHeader string
	var extracted telemetry.SpanContext
	srv := httptest.NewServer(WithServerTime(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(telemetry.TraceHeader)
		extracted = telemetry.SpanFromContext(ExtractTrace(r))
		WriteJSON(w, http.StatusOK, Ready{Ready: true})
	})))
	defer srv.Close()

	// A JSONL sink on the default registry captures the trace.clock
	// instants the client emits.
	var buf bytes.Buffer
	reg := telemetry.Default()
	reg.SetSink(telemetry.NewJSONLSink(&buf))
	defer reg.SetSink(nil)

	sc := telemetry.NewSpanContext(0)
	ctx := telemetry.ContextWithSpan(context.Background(), sc)
	for i := 0; i < 3; i++ {
		if _, _, err := Post(ctx, srv.Client(), srv.URL, &Ready{}, nil); err != nil {
			t.Fatal(err)
		}
	}

	if want := sc.Header(); gotHeader != want {
		t.Errorf("server saw SB-Trace %q, want %q", gotHeader, want)
	}
	if extracted != sc {
		t.Errorf("ExtractTrace got %+v, want %+v", extracted, sc)
	}

	events, err := telemetry.ParseJSONLTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	clocks := 0
	for i := range events {
		if events[i].Name == telemetry.ClockEventName {
			clocks++
			off, ok := telemetry.ClockOffset(events[i : i+1])
			if !ok {
				t.Fatal("clock event missing remote_unix_ns")
			}
			// Same machine, same clock: the offset is bounded by the
			// request round trip.
			if off < -time.Minute || off > time.Minute {
				t.Errorf("clock offset %v implausible for a loopback request", off)
			}
		}
	}
	if clocks != 1 {
		t.Errorf("got %d trace.clock events over 3 requests to one host, want 1", clocks)
	}
}

// TestTraceHeaderAbsent checks both halves of the no-trace path: a ctx
// without a span context sends no header, and a malformed inbound header
// extracts to nothing.
func TestTraceHeaderAbsent(t *testing.T) {
	var header string
	var extracted telemetry.SpanContext
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header = r.Header.Get(telemetry.TraceHeader)
		extracted = telemetry.SpanFromContext(ExtractTrace(r))
		WriteJSON(w, http.StatusOK, Ready{Ready: true})
	}))
	defer srv.Close()

	if _, _, err := Get(context.Background(), srv.Client(), srv.URL, nil); err != nil {
		t.Fatal(err)
	}
	if header != "" {
		t.Errorf("traceless request sent SB-Trace %q", header)
	}
	if extracted != (telemetry.SpanContext{}) {
		t.Errorf("absent header extracted to %+v", extracted)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set(telemetry.TraceHeader, "00-garbage-header")
	if _, err := srv.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	if extracted != (telemetry.SpanContext{}) {
		t.Errorf("malformed header extracted to %+v, want zero (fresh-root fallback)", extracted)
	}
}

func TestWithServerTime(t *testing.T) {
	h := WithServerTime(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	before := time.Now().UnixNano()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	after := time.Now().UnixNano()
	ns, err := strconv.ParseInt(rec.Header().Get(telemetry.TimeHeader), 10, 64)
	if err != nil {
		t.Fatalf("SB-Time header: %v", err)
	}
	if ns < before || ns > after {
		t.Errorf("SB-Time %d outside [%d, %d]", ns, before, after)
	}
}
