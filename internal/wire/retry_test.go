package wire

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastPolicy(attempts int) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Jitter:      0.5,
		Seed:        42,
	}
}

func TestRetryPolicyRecoversFrom5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			WriteError(w, http.StatusServiceUnavailable, "booting")
			return
		}
		WriteJSON(w, http.StatusOK, Error{Error: ""})
	}))
	defer srv.Close()

	var out Error
	code, _, err := fastPolicy(5).Get(context.Background(), srv.Client(), srv.URL, &out)
	if err != nil || code != http.StatusOK {
		t.Fatalf("Get = %d, %v; want 200, nil", code, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestRetryPolicyNever4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusBadRequest, "your fault")
	}))
	defer srv.Close()

	code, _, err := fastPolicy(5).Post(context.Background(), srv.Client(), srv.URL, Error{}, nil)
	if code != http.StatusBadRequest || err == nil {
		t.Fatalf("Post = %d, %v; want 400 with error", code, err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx must not retry)", got)
	}
}

func TestRetryPolicyConnectionRefused(t *testing.T) {
	// Grab a port that nothing listens on.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	var retries atomic.Int64
	p := fastPolicy(3)
	p.OnRetry = func(attempt int, err error, wait time.Duration) { retries.Add(1) }
	code, _, err := p.Get(context.Background(), &http.Client{Timeout: time.Second}, url, nil)
	if err == nil || code != 0 {
		t.Fatalf("Get = %d, %v; want transport failure", code, err)
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("observed %d retries, want 2", got)
	}
}

func TestRetryPolicyContextCancelStops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	p := fastPolicy(10)
	p.OnRetry = func(int, error, time.Duration) { calls.Add(1) }
	_, _, err := p.Get(ctx, &http.Client{}, url, nil)
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if calls.Load() != 0 {
		t.Fatalf("cancelled context still scheduled %d retries", calls.Load())
	}
}

func TestRetryPolicyNilReceiver(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusInternalServerError, "down")
	}))
	defer srv.Close()

	var p *RetryPolicy
	code, _, err := p.Get(context.Background(), srv.Client(), srv.URL, nil)
	if code != http.StatusInternalServerError || err == nil {
		t.Fatalf("Get = %d, %v", code, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("nil policy made %d attempts, want 1", calls.Load())
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}
