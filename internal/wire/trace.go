package wire

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"balance/internal/telemetry"
)

// Cross-process trace propagation at the HTTP layer. Clients inject the
// span context carried by their request context as an SB-Trace header
// (injected by Post and Get automatically); servers extract it with
// ExtractTrace so their request spans parent the caller's span under one
// trace ID. Responses carry the server's clock in SB-Time (WithServerTime),
// which the client turns into a once-per-host trace.clock instant — the
// handshake cmd/sbtrace uses to align per-process trace files onto one
// timeline.

// injectTrace sets the SB-Trace header from the span context carried by
// ctx, if any. Requests outside a trace stay header-free.
func injectTrace(ctx context.Context, h http.Header) {
	if sc := telemetry.SpanFromContext(ctx); sc.Trace != 0 {
		h.Set(telemetry.TraceHeader, sc.Header())
	}
}

// clockSeen marks remote hosts whose clock has been recorded, so each
// trace file carries one trace.clock instant per server rather than one
// per request.
var clockSeen sync.Map

// observeServerTime turns a response's SB-Time header into the
// once-per-host trace.clock instant. The event's own timestamp is the
// local receipt time, so offset = remote - local (see
// telemetry.ClockOffset); the one-way network delay is the error bound,
// which is fine for timeline alignment.
func observeServerTime(resp *http.Response) {
	reg := telemetry.Default()
	if !reg.SinkActive() {
		return
	}
	v := resp.Header.Get(telemetry.TimeHeader)
	if v == "" {
		return
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return
	}
	var host string
	if resp.Request != nil && resp.Request.URL != nil {
		host = resp.Request.URL.Host
	}
	if _, dup := clockSeen.LoadOrStore(host, struct{}{}); dup {
		return
	}
	reg.Emit(telemetry.ClockEventName,
		telemetry.Int(telemetry.ClockRemoteAttr, ns),
		telemetry.String(telemetry.ClockHostAttr, host))
}

// ExtractTrace returns the request's context carrying the span context
// from its SB-Trace header. A missing or malformed header leaves the
// context unchanged, so the server's span starts a fresh root — garbage
// from the wire must never poison server-side telemetry.
func ExtractTrace(r *http.Request) context.Context {
	if sc, ok := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader)); ok {
		return telemetry.ContextWithSpan(r.Context(), sc)
	}
	return r.Context()
}

// WithServerTime wraps h so every response carries the server's clock as
// Unix nanoseconds in the SB-Time header — the server's half of the
// clock-alignment handshake.
func WithServerTime(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(telemetry.TimeHeader, strconv.FormatInt(time.Now().UnixNano(), 10))
		h.ServeHTTP(w, r)
	})
}
