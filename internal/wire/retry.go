package wire

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy retries idempotent requests that failed for transient
// reasons, with jittered exponential backoff. "Transient" means a
// transport-level failure (connection refused, reset, DNS — the status
// code is zero) or a 5xx from the server; 4xx responses are the caller's
// bug and are never retried, and context cancellation stops the loop
// immediately.
//
// A nil *RetryPolicy is valid and means "one attempt, no retries", so
// call sites can thread an optional policy without branching.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (values < 1 mean 1).
	MaxAttempts int
	// BaseDelay is the wait after the first failure; each subsequent
	// wait doubles, capped at MaxDelay. Defaults: 100ms base, 5s cap.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter in [0,1] scales each wait uniformly into
	// [d*(1-Jitter), d]: 0 is deterministic backoff, 1 full jitter.
	Jitter float64
	// Seed makes the jitter sequence deterministic when non-zero
	// (tests, reproducible chaos runs); zero seeds from the clock.
	Seed int64
	// OnRetry, when set, observes each scheduled retry: the attempt
	// that just failed (1-based), the error, and the wait before the
	// next attempt.
	OnRetry func(attempt int, err error, wait time.Duration)

	once sync.Once
	rng  *rand.Rand
	mu   sync.Mutex
}

// Retryable reports whether a (code, err) pair from Post/Get is worth
// retrying: transport failures other than context cancellation, and 5xx.
func Retryable(code int, err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if code == 0 {
		return true // transport failure before any status line
	}
	return code >= 500
}

// Post is Post with this policy's retry loop around it.
func (p *RetryPolicy) Post(ctx context.Context, hc *http.Client, url string, in, out any) (int, http.Header, error) {
	return p.do(ctx, func() (int, http.Header, error) {
		return Post(ctx, hc, url, in, out)
	})
}

// Get is Get with this policy's retry loop around it.
func (p *RetryPolicy) Get(ctx context.Context, hc *http.Client, url string, out any) (int, http.Header, error) {
	return p.do(ctx, func() (int, http.Header, error) {
		return Get(ctx, hc, url, out)
	})
}

func (p *RetryPolicy) do(ctx context.Context, attempt func() (int, http.Header, error)) (int, http.Header, error) {
	max := 1
	if p != nil && p.MaxAttempts > 1 {
		max = p.MaxAttempts
	}
	var (
		code int
		hdr  http.Header
		err  error
	)
	for try := 1; ; try++ {
		code, hdr, err = attempt()
		if err == nil || try >= max || !Retryable(code, err) {
			return code, hdr, err
		}
		wait := p.backoff(try)
		if p.OnRetry != nil {
			p.OnRetry(try, err, wait)
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return code, hdr, err // last real failure, not ctx.Err()
		case <-t.C:
		}
	}
}

// backoff computes the jittered wait after the try-th failure (1-based).
func (p *RetryPolicy) backoff(try int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base
	for i := 1; i < try && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if p.Jitter > 0 {
		p.once.Do(func() {
			seed := p.Seed
			if seed == 0 {
				seed = time.Now().UnixNano()
			}
			p.rng = rand.New(rand.NewSource(seed))
		})
		p.mu.Lock()
		u := p.rng.Float64()
		p.mu.Unlock()
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d = time.Duration(float64(d) * (1 - j + j*u))
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}
