package sched

import (
	"fmt"
	"sort"
	"strings"

	"balance/internal/model"
)

// Render formats the schedule as a cycle-by-cycle listing: one line per
// cycle with the operations issued in it, branches annotated with their
// exit probability.
func Render(sb *model.Superblock, s *Schedule) string {
	byCycle := map[int][]int{}
	maxC := 0
	for v, c := range s.Cycle {
		byCycle[c] = append(byCycle[c], v)
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for c := 0; c <= maxC; c++ {
		ops := byCycle[c]
		sort.Ints(ops)
		cells := make([]string, 0, len(ops))
		for _, v := range ops {
			if bi, ok := sb.BranchIndex(v); ok {
				cells = append(cells, fmt.Sprintf("%d:branch(p=%.2f)", v, sb.Prob[bi]))
				continue
			}
			cells = append(cells, fmt.Sprintf("%d:%s", v, sb.G.Op(v).Class))
		}
		fmt.Fprintf(&b, "cycle %3d  %s\n", c, strings.Join(cells, "  "))
	}
	return b.String()
}

// RenderGantt formats the schedule as a per-unit occupancy chart: one row
// per functional unit, one column per cycle, with operation IDs in the
// cycles the unit is held ('.' when idle). Operations are assigned to the
// lowest-numbered free unit of their kind at issue time, matching any legal
// unit binding.
func RenderGantt(sb *model.Superblock, m *model.Machine, s *Schedule) string {
	maxC := 0
	for v, c := range s.Cycle {
		if end := c + m.Occupancy(sb.G.Op(v).Class); end > maxC {
			maxC = end
		}
	}
	// rows[k][u][cycle] = op ID + 1 (0 = idle).
	rows := make([][][]int, m.Kinds())
	for k := range rows {
		rows[k] = make([][]int, m.Capacity(k))
		for u := range rows[k] {
			rows[k][u] = make([]int, maxC)
		}
	}
	// Assign ops to units in issue order for a deterministic, legal binding.
	order := make([]int, len(s.Cycle))
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(a, b int) bool {
		if s.Cycle[order[a]] != s.Cycle[order[b]] {
			return s.Cycle[order[a]] < s.Cycle[order[b]]
		}
		return order[a] < order[b]
	})
	for _, v := range order {
		cls := sb.G.Op(v).Class
		k := m.KindOf(cls)
		occ := m.Occupancy(cls)
		start := s.Cycle[v]
		for u := range rows[k] {
			free := true
			for t := start; t < start+occ; t++ {
				if rows[k][u][t] != 0 {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for t := start; t < start+occ; t++ {
				rows[k][u][t] = v + 1
			}
			break
		}
	}
	width := len(fmt.Sprintf("%d", sb.G.NumOps()-1))
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "cycle")
	for c := 0; c < maxC; c++ {
		fmt.Fprintf(&b, " %*d", width, c)
	}
	b.WriteString("\n")
	for k := range rows {
		for u := range rows[k] {
			fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%s[%d]", m.KindName(k), u))
			for c := 0; c < maxC; c++ {
				if id := rows[k][u][c]; id != 0 {
					fmt.Fprintf(&b, " %*d", width, id-1)
				} else {
					fmt.Fprintf(&b, " %*s", width, ".")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
