package sched

import (
	"testing"
	"testing/quick"

	"balance/internal/model"
	"balance/internal/testutil"
)

func TestCompactImprovesSparseSchedule(t *testing.T) {
	// A deliberately bad (serial) schedule must compact substantially.
	b := model.NewBuilder("sparse")
	var ids []int
	for i := 0; i < 6; i++ {
		ids = append(ids, b.Int())
	}
	b.Branch(0, ids...)
	sb := b.MustBuild()
	m := model.GP2()
	s := NewSchedule(sb.G.NumOps())
	for v := range s.Cycle {
		s.Cycle[v] = v * 2 // gappy serial schedule
	}
	if err := Verify(sb, m, s); err != nil {
		t.Fatal(err)
	}
	out, moved := Compact(sb, m, s)
	if err := Verify(sb, m, out); err != nil {
		t.Fatalf("compacted schedule illegal: %v", err)
	}
	if moved == 0 {
		t.Error("nothing moved")
	}
	if Cost(sb, out) >= Cost(sb, s) {
		t.Errorf("compaction did not reduce cost: %v -> %v", Cost(sb, s), Cost(sb, out))
	}
	// Six ops on two units: all in cycles 0-2, branch at 3.
	if out.Cycle[sb.Branches[0]] != 3 {
		t.Errorf("branch at %d after compaction, want 3", out.Cycle[sb.Branches[0]])
	}
}

func TestCompactIdempotentOnTightSchedules(t *testing.T) {
	b := model.NewBuilder("tight")
	o0 := b.Int()
	o1 := b.Int(o0)
	b.Branch(0, o1)
	sb := b.MustBuild()
	m := model.GP2()
	s, _, err := ListSchedule(sb, m, IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	out, moved := Compact(sb, m, s)
	if moved != 0 {
		t.Errorf("moved %d ops on an already greedy schedule", moved)
	}
	for v := range out.Cycle {
		if out.Cycle[v] != s.Cycle[v] {
			t.Errorf("op %d moved from %d to %d", v, s.Cycle[v], out.Cycle[v])
		}
	}
}

// TestQuickCompactSafety: on arbitrary instances, machines (incl.
// non-pipelined), and priority schedules, compaction keeps legality and
// never increases any op's cycle or the cost.
func TestQuickCompactSafety(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine, rev bool) bool {
		sb, m := q.SB, qm.M
		key := IntsToFloats(sb.G.Heights())
		if rev {
			key = Negate(key)
		}
		s, _, err := ListSchedule(sb, m, key)
		if err != nil {
			return false
		}
		out, _ := Compact(sb, m, s)
		if err := Verify(sb, m, out); err != nil {
			t.Logf("illegal after compaction: %v", err)
			return false
		}
		for v := range out.Cycle {
			if out.Cycle[v] > s.Cycle[v] {
				t.Logf("op %d moved later: %d -> %d", v, s.Cycle[v], out.Cycle[v])
				return false
			}
		}
		return Cost(sb, out) <= Cost(sb, s)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
