package sched

import (
	"strings"
	"testing"

	"balance/internal/model"
)

func renderFixture(t *testing.T) (*model.Superblock, *Schedule, *model.Machine) {
	t.Helper()
	b := model.NewBuilder("render")
	o0 := b.Int()
	o1 := b.Int(o0)
	b.Branch(0.5, o1)
	o2 := b.Int()
	b.Branch(0, o2)
	sb := b.MustBuild()
	m := model.GP2()
	s, _, err := ListSchedule(sb, m, IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	return sb, s, m
}

func TestRender(t *testing.T) {
	sb, s, _ := renderFixture(t)
	out := Render(sb, s)
	if !strings.Contains(out, "cycle   0") {
		t.Errorf("missing cycle 0:\n%s", out)
	}
	if !strings.Contains(out, "branch(p=0.50)") {
		t.Errorf("missing branch annotation:\n%s", out)
	}
	if !strings.Contains(out, "0:int") {
		t.Errorf("missing op listing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != s.Length(sb.G)-0 && lines < 3 {
		t.Errorf("unexpected line count %d:\n%s", lines, out)
	}
}

func TestRenderGantt(t *testing.T) {
	sb, s, m := renderFixture(t)
	out := RenderGantt(sb, m, s)
	if !strings.Contains(out, "gp[0]") || !strings.Contains(out, "gp[1]") {
		t.Errorf("missing unit rows:\n%s", out)
	}
	// Every op ID must appear exactly once per held cycle; with unit
	// occupancy each appears once.
	for v := 0; v < sb.G.NumOps(); v++ {
		if !strings.Contains(out, " "+string(rune('0'+v))) {
			t.Errorf("op %d missing from gantt:\n%s", v, out)
		}
	}
}

func TestRenderGanttOccupancy(t *testing.T) {
	b := model.NewBuilder("np")
	f := b.Op(model.FloatMul)
	b.Branch(0, f)
	sb := b.MustBuild()
	m := model.GP1().WithOccupancy(model.FloatMul, 3)
	s, _, err := ListSchedule(sb, m, IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(sb, m, s)
	// The multiply (op 0) must occupy three consecutive columns.
	row := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gp[0]") {
			row = line
		}
	}
	if got := strings.Count(row, " 0"); got != 3 {
		t.Errorf("fmul occupies %d cycles in gantt, want 3:\n%s", got, out)
	}
	if err := Verify(sb, m, s); err != nil {
		t.Fatal(err)
	}
}

func TestRenderFS(t *testing.T) {
	b := model.NewBuilder("fs")
	l := b.Load()
	i := b.Int(l)
	b.Branch(0, i)
	sb := b.MustBuild()
	m := model.FS4()
	s, _, err := ListSchedule(sb, m, IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGantt(sb, m, s)
	for _, unit := range []string{"int[0]", "mem[0]", "float[0]", "branch[0]"} {
		if !strings.Contains(out, unit) {
			t.Errorf("missing %s row:\n%s", unit, out)
		}
	}
}
