package sched_test

import (
	"testing"
	"testing/quick"

	"balance/internal/model"
	"balance/internal/sched"
	"balance/internal/testutil"
)

var quickCfg = &quick.Config{MaxCount: 100}

// TestQuickListScheduleAlwaysLegal: any priority vector yields a legal
// schedule on any machine.
func TestQuickListScheduleAlwaysLegal(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine, bias uint8) bool {
		sb, m := q.SB, qm.M
		// Derive a priority from the bias byte so quick explores different
		// orderings: heights, reversed heights, block-major, or IDs.
		n := sb.G.NumOps()
		key := make([]float64, n)
		switch bias % 4 {
		case 0:
			key = sched.IntsToFloats(sb.G.Heights())
		case 1:
			key = sched.Negate(sched.IntsToFloats(sb.G.Heights()))
		case 2:
			for v := 0; v < n; v++ {
				key[v] = -float64(sb.Block[v])
			}
		default:
			for v := 0; v < n; v++ {
				key[v] = float64(v)
			}
		}
		s, _, err := sched.ListSchedule(sb, m, key)
		if err != nil {
			t.Logf("schedule failed: %v", err)
			return false
		}
		if err := sched.Verify(sb, m, s); err != nil {
			t.Logf("verify failed: %v", err)
			return false
		}
		// Cost is bounded by the serial horizon and at least the best
		// dependence-only completion of any branch.
		cost := sched.Cost(sb, s)
		if cost < 0 || cost > float64(sched.Horizon(sb)+1) {
			return false
		}
		early := sb.G.EarlyDC()
		floor := 0.0
		for i, b := range sb.Branches {
			floor += sb.Prob[i] * float64(early[b]+model.BranchLatency)
		}
		return cost >= floor-1e-9
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickScheduleCostDecomposition: Cost equals the probability-weighted
// branch completion sum by construction.
func TestQuickScheduleCostDecomposition(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		sb := q.SB
		s, _, err := sched.ListSchedule(sb, model.GP2(), sched.IntsToFloats(sb.G.Heights()))
		if err != nil {
			return false
		}
		manual := 0.0
		for i, c := range sched.BranchCycles(sb, s) {
			manual += sb.Prob[i] * float64(c+model.BranchLatency)
		}
		diff := manual - sched.Cost(sb, s)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWiderMachineNeverHurts: growing a GP machine's width can only
// reduce (or keep) the cost of a height-priority list schedule... list
// scheduling anomalies can in principle violate this for a fixed priority,
// so the property is stated against the dependence floor instead: on a
// machine at least as wide as the op count, the schedule must achieve every
// branch's dependence-only early time.
func TestQuickWiderMachineNeverHurts(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		sb := q.SB
		wide := model.NewGP(sb.G.NumOps() + 1)
		s, _, err := sched.ListSchedule(sb, wide, sched.IntsToFloats(sb.G.Heights()))
		if err != nil {
			return false
		}
		early := sb.G.EarlyDC()
		for _, b := range sb.Branches {
			if s.Cycle[b] != early[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
