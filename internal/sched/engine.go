package sched

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"balance/internal/model"
	"balance/internal/telemetry"
)

// List-scheduler instruments. Ready-queue sizes are sampled one Candidates
// call in readyQueueSampleEvery (observing every call put the histogram's
// atomics on the scheduler's hottest path), so the histogram tracks how
// much choice the pickers had at a 1-in-N granularity.
var (
	telRuns       = telemetry.Default().Counter("sched.runs")
	telOps        = telemetry.Default().Counter("sched.ops_scheduled")
	telCycles     = telemetry.Default().Counter("sched.cycles_scheduled")
	telReadyQueue = telemetry.Default().Histogram("sched.ready_queue_len")
)

// readyQueueSampleEvery is the Candidates-call sampling stride of the
// sched.ready_queue_len histogram (a power of two keeps the check to one
// increment and mask).
const readyQueueSampleEvery = 16

// Stats counts the work performed while constructing a schedule. The counts
// mirror the "sum of each loop trip count" metric of Table 6 in the paper.
type Stats struct {
	// Decisions is the number of pick decisions (one per scheduled op).
	Decisions int64
	// CycleAdvances is the number of times the scheduler moved to the next
	// cycle because nothing else fit in the current one.
	CycleAdvances int64
	// CandidateScans counts candidate operations examined across all picks.
	CandidateScans int64
	// PriorityWork counts heuristic-specific inner-loop trips (priority
	// evaluations, bound updates, need computations, ...).
	PriorityWork int64
	// FullUpdates and LightUpdates count dynamic-bound recomputations in
	// heuristics that maintain them (Help, Balance).
	FullUpdates  int64
	LightUpdates int64
}

// Total returns the sum of all counters (the scalar complexity statistic).
func (s *Stats) Total() int64 {
	return s.Decisions + s.CycleAdvances + s.CandidateScans + s.PriorityWork + s.FullUpdates + s.LightUpdates
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Decisions += other.Decisions
	s.CycleAdvances += other.CycleAdvances
	s.CandidateScans += other.CandidateScans
	s.PriorityWork += other.PriorityWork
	s.FullUpdates += other.FullUpdates
	s.LightUpdates += other.LightUpdates
}

// State is the evolving state of a list-scheduling run. Pickers inspect it
// to choose the next operation; the engine owns all mutations.
type State struct {
	// SB and M identify the problem instance.
	SB *model.Superblock
	M  *model.Machine

	// Cycle is the cycle currently being filled.
	Cycle int
	// IssueCycle[v] is v's issue cycle, or -1 while unscheduled.
	IssueCycle []int
	// Scheduled is the number of operations issued so far.
	Scheduled int
	// LastOp is the operation scheduled by the previous decision, or -1 if
	// the previous event was a cycle advance (used by light updates).
	LastOp int
	// Stats accumulates work counters.
	Stats Stats

	predsLeft []int   // unscheduled direct predecessors
	readyAt   []int   // earliest dependence-ready cycle once predsLeft == 0
	busy      [][]int // busy[k][cycle] = kind-k units held at cycle
	candBuf   []int

	// Incremental ready set: ready holds the unscheduled ops whose
	// dependences are satisfied at the current cycle (resource feasibility
	// is checked per Candidates call), kept sorted ascending by op ID so
	// Candidates never sorts. pendAt[c] buckets ops that become
	// dependence-ready at cycle c — advance() splices the next bucket
	// instead of rescanning all ops.
	ready    []int
	pendAt   [][]int
	kind     []int // resource kind per op (memoized m.KindOf)
	occ      []int // occupancy per op (memoized m.Occupancy)
	kcap     []int // capacity per kind (memoized m.Capacity)
	candTick uint  // Candidates-call counter for histogram sampling
}

// statePool recycles run states: grid searches (the cross product runs the
// list scheduler 121 times per superblock) would otherwise allocate ~10
// op-sized slices per run.
var statePool = sync.Pool{New: func() any { return new(State) }}

// resized returns s with length n, reusing its backing array when possible.
func resized(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// newState initializes engine state for one scheduling run.
func newState(sb *model.Superblock, m *model.Machine) *State {
	n := sb.G.NumOps()
	kinds := m.Kinds()
	st := statePool.Get().(*State)
	st.SB, st.M = sb, m
	st.Cycle, st.Scheduled = 0, 0
	st.LastOp = -1
	st.Stats = Stats{}
	st.IssueCycle = resized(st.IssueCycle, n)
	st.predsLeft = resized(st.predsLeft, n)
	st.readyAt = resized(st.readyAt, n)
	st.kind = resized(st.kind, n)
	st.occ = resized(st.occ, n)
	st.kcap = resized(st.kcap, kinds)
	if cap(st.busy) < kinds {
		st.busy = make([][]int, kinds)
	}
	st.busy = st.busy[:kinds]
	for k := 0; k < kinds; k++ {
		st.busy[k] = st.busy[k][:0]
		st.kcap[k] = m.Capacity(k)
	}
	for i := range st.pendAt {
		st.pendAt[i] = st.pendAt[i][:0]
	}
	st.ready = st.ready[:0]
	for v := 0; v < n; v++ {
		st.IssueCycle[v] = -1
		st.predsLeft[v] = len(sb.G.Preds(v))
		st.readyAt[v] = 0
		c := sb.G.Op(v).Class
		st.kind[v] = m.KindOf(c)
		st.occ[v] = m.Occupancy(c)
	}
	// Source ops are dependence-ready at cycle 0 (ascending scan keeps the
	// ready list sorted).
	for v := 0; v < n; v++ {
		if st.predsLeft[v] == 0 {
			st.ready = append(st.ready, v)
		}
	}
	return st
}

// release returns the state to the pool for reuse by a later run.
func (st *State) release() {
	st.SB, st.M = nil, nil
	statePool.Put(st)
}

// pushReady inserts v into the sorted ready set (its dependences are
// satisfied at the current cycle).
func (st *State) pushReady(v int) {
	pos, _ := slices.BinarySearch(st.ready, v)
	st.ready = append(st.ready, 0)
	copy(st.ready[pos+1:], st.ready[pos:])
	st.ready[pos] = v
}

// dropReady removes v from the sorted ready set if present.
func (st *State) dropReady(v int) {
	pos, ok := slices.BinarySearch(st.ready, v)
	if !ok {
		return
	}
	st.ready = append(st.ready[:pos], st.ready[pos+1:]...)
}

// IsScheduled reports whether v has been issued.
func (st *State) IsScheduled(v int) bool { return st.IssueCycle[v] >= 0 }

// DepReady reports whether all of v's dependences are satisfied by the
// current cycle (v may still fail to fit a resource).
func (st *State) DepReady(v int) bool {
	return st.IssueCycle[v] < 0 && st.predsLeft[v] == 0 && st.readyAt[v] <= st.Cycle
}

// ReadyAt returns the earliest dependence-ready cycle of v, valid once all
// of v's predecessors are scheduled.
func (st *State) ReadyAt(v int) int { return st.readyAt[v] }

// PredsLeft returns the number of v's unscheduled direct predecessors.
func (st *State) PredsLeft(v int) int { return st.predsLeft[v] }

// BusyAt returns the number of kind-k units already held at the given
// cycle (by previously issued operations, including non-fully-pipelined
// ones still occupying their unit).
func (st *State) BusyAt(k, cycle int) int {
	if cycle < len(st.busy[k]) {
		return st.busy[k][cycle]
	}
	return 0
}

// FreeSlots returns the number of unused units of resource kind k in the
// current cycle.
func (st *State) FreeSlots(k int) int { return st.M.Capacity(k) - st.BusyAt(k, st.Cycle) }

// FreeSlotsAt returns the number of unused kind-k units at an arbitrary
// cycle.
func (st *State) FreeSlotsAt(k, cycle int) int { return st.M.Capacity(k) - st.BusyAt(k, cycle) }

// Fits reports whether v's resource kind has a free unit for v's whole
// occupancy window starting at the current cycle.
func (st *State) Fits(v int) bool {
	k := st.kind[v]
	cap := st.kcap[k]
	if cap <= 0 {
		return false
	}
	busy := st.busy[k]
	c := st.Cycle
	if st.occ[v] == 1 { // fully-pipelined fast path: one cycle to check
		return c >= len(busy) || busy[c] < cap
	}
	for t := c; t < c+st.occ[v]; t++ {
		b := 0
		if t < len(busy) {
			b = busy[t]
		}
		if b >= cap {
			return false
		}
	}
	return true
}

// Candidates returns the operations that can legally issue in the current
// cycle (dependence-ready and resource-feasible) in ascending ID order.
// The returned slice is reused across calls; callers must not retain it.
//
// The scan covers only the incremental ready set — ops whose dependences
// are already satisfied — rather than every op, so a call costs O(ready),
// not O(n).
func (st *State) Candidates() []int {
	st.candBuf = st.candBuf[:0]
	// The ready list is sorted, so the filtered scan yields the ascending-ID
	// order that pickers keeping the first-seen op on priority ties rely on.
	for _, v := range st.ready {
		st.Stats.CandidateScans++
		if st.Fits(v) {
			st.candBuf = append(st.candBuf, v)
		}
	}
	if st.candTick++; st.candTick%readyQueueSampleEvery == 0 {
		telReadyQueue.Observe(int64(len(st.candBuf)))
	}
	return st.candBuf
}

// place issues v in the current cycle.
func (st *State) place(v int) {
	st.IssueCycle[v] = st.Cycle
	st.Scheduled++
	st.dropReady(v)
	k := st.kind[v]
	for t := st.Cycle; t < st.Cycle+st.occ[v]; t++ {
		for t >= len(st.busy[k]) {
			st.busy[k] = append(st.busy[k], 0)
		}
		st.busy[k][t]++
	}
	for _, e := range st.SB.G.Succs(v) {
		w := e.To
		st.predsLeft[w]--
		if t := st.Cycle + e.Lat; t > st.readyAt[w] {
			st.readyAt[w] = t
		}
		if st.predsLeft[w] == 0 {
			// readyAt[w] is final now that every predecessor has issued.
			if r := st.readyAt[w]; r <= st.Cycle {
				st.pushReady(w)
			} else {
				for r >= len(st.pendAt) {
					st.pendAt = append(st.pendAt, nil)
				}
				st.pendAt[r] = append(st.pendAt[r], w)
			}
		}
	}
	st.LastOp = v
}

// advance moves to the next cycle, promoting ops that become
// dependence-ready in it.
func (st *State) advance() {
	st.Cycle++
	st.LastOp = -1
	st.Stats.CycleAdvances++
	if st.Cycle < len(st.pendAt) {
		for _, v := range st.pendAt[st.Cycle] {
			st.pushReady(v)
		}
		st.pendAt[st.Cycle] = st.pendAt[st.Cycle][:0]
	}
}

// Picker selects the next operation to issue. Pick must return either an
// operation from the current candidate set (dependence-ready and
// resource-feasible in the current cycle) or -1 to advance to the next
// cycle. The engine never calls Pick once all operations are scheduled.
type Picker interface {
	Pick(st *State) int
}

// PickerFunc adapts a function to the Picker interface.
type PickerFunc func(st *State) int

// Pick implements Picker.
func (f PickerFunc) Pick(st *State) int { return f(st) }

// Run executes list scheduling with the given picker and returns the
// resulting schedule and the work statistics of the run.
func Run(sb *model.Superblock, m *model.Machine, p Picker) (*Schedule, Stats, error) {
	return RunCtx(context.Background(), sb, m, p)
}

// RunCtx is Run parented into a trace: when a telemetry sink is
// installed, the run emits a "sched.run" span under the span carried by
// ctx (the engine's per-heuristic span, or a tool's root). The context
// is used for trace parentage only — list scheduling is fast and is
// never cancelled mid-run.
func RunCtx(ctx context.Context, sb *model.Superblock, m *model.Machine, p Picker) (*Schedule, Stats, error) {
	sp, _ := telemetry.Default().StartSpanCtx(ctx, "sched.run")
	st := newState(sb, m)
	defer st.release()
	n := sb.G.NumOps()
	horizon := Horizon(sb) + n
	for st.Scheduled < n {
		if st.Cycle > horizon {
			return nil, st.Stats, fmt.Errorf("sched: picker made no progress by cycle %d on %q", st.Cycle, sb.Name)
		}
		v := p.Pick(st)
		st.Stats.Decisions++
		if v < 0 {
			st.advance()
			continue
		}
		if v >= n || !st.DepReady(v) || !st.Fits(v) {
			return nil, st.Stats, fmt.Errorf("sched: picker chose illegal op %d at cycle %d on %q", v, st.Cycle, sb.Name)
		}
		st.place(v)
	}
	telRuns.Inc()
	telOps.Add(int64(n))
	telCycles.Add(int64(st.Cycle) + 1)
	if sp.Active() {
		sp.End(
			telemetry.String("sb", sb.Name),
			telemetry.Int("ops", int64(n)),
			telemetry.Int("cycles", int64(st.Cycle)+1),
			telemetry.Int("decisions", st.Stats.Decisions),
		)
	}
	s := &Schedule{Cycle: append([]int(nil), st.IssueCycle...)}
	return s, st.Stats, nil
}
