package sched

import (
	"fmt"

	"balance/internal/model"
	"balance/internal/telemetry"
)

// List-scheduler instruments. Ready-queue sizes are observed once per
// Candidates call (i.e. at least once per pick decision), so the histogram
// tracks how much choice the pickers actually had.
var (
	telRuns       = telemetry.Default().Counter("sched.runs")
	telOps        = telemetry.Default().Counter("sched.ops_scheduled")
	telCycles     = telemetry.Default().Counter("sched.cycles_scheduled")
	telReadyQueue = telemetry.Default().Histogram("sched.ready_queue_len")
)

// Stats counts the work performed while constructing a schedule. The counts
// mirror the "sum of each loop trip count" metric of Table 6 in the paper.
type Stats struct {
	// Decisions is the number of pick decisions (one per scheduled op).
	Decisions int64
	// CycleAdvances is the number of times the scheduler moved to the next
	// cycle because nothing else fit in the current one.
	CycleAdvances int64
	// CandidateScans counts candidate operations examined across all picks.
	CandidateScans int64
	// PriorityWork counts heuristic-specific inner-loop trips (priority
	// evaluations, bound updates, need computations, ...).
	PriorityWork int64
	// FullUpdates and LightUpdates count dynamic-bound recomputations in
	// heuristics that maintain them (Help, Balance).
	FullUpdates  int64
	LightUpdates int64
}

// Total returns the sum of all counters (the scalar complexity statistic).
func (s *Stats) Total() int64 {
	return s.Decisions + s.CycleAdvances + s.CandidateScans + s.PriorityWork + s.FullUpdates + s.LightUpdates
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Decisions += other.Decisions
	s.CycleAdvances += other.CycleAdvances
	s.CandidateScans += other.CandidateScans
	s.PriorityWork += other.PriorityWork
	s.FullUpdates += other.FullUpdates
	s.LightUpdates += other.LightUpdates
}

// State is the evolving state of a list-scheduling run. Pickers inspect it
// to choose the next operation; the engine owns all mutations.
type State struct {
	// SB and M identify the problem instance.
	SB *model.Superblock
	M  *model.Machine

	// Cycle is the cycle currently being filled.
	Cycle int
	// IssueCycle[v] is v's issue cycle, or -1 while unscheduled.
	IssueCycle []int
	// Scheduled is the number of operations issued so far.
	Scheduled int
	// LastOp is the operation scheduled by the previous decision, or -1 if
	// the previous event was a cycle advance (used by light updates).
	LastOp int
	// Stats accumulates work counters.
	Stats Stats

	predsLeft []int   // unscheduled direct predecessors
	readyAt   []int   // earliest dependence-ready cycle once predsLeft == 0
	busy      [][]int // busy[k][cycle] = kind-k units held at cycle
	candBuf   []int
}

// newState initializes engine state for one scheduling run.
func newState(sb *model.Superblock, m *model.Machine) *State {
	n := sb.G.NumOps()
	st := &State{
		SB:         sb,
		M:          m,
		IssueCycle: make([]int, n),
		LastOp:     -1,
		predsLeft:  make([]int, n),
		readyAt:    make([]int, n),
		busy:       make([][]int, m.Kinds()),
	}
	for v := 0; v < n; v++ {
		st.IssueCycle[v] = -1
		st.predsLeft[v] = len(sb.G.Preds(v))
	}
	return st
}

// IsScheduled reports whether v has been issued.
func (st *State) IsScheduled(v int) bool { return st.IssueCycle[v] >= 0 }

// DepReady reports whether all of v's dependences are satisfied by the
// current cycle (v may still fail to fit a resource).
func (st *State) DepReady(v int) bool {
	return st.IssueCycle[v] < 0 && st.predsLeft[v] == 0 && st.readyAt[v] <= st.Cycle
}

// ReadyAt returns the earliest dependence-ready cycle of v, valid once all
// of v's predecessors are scheduled.
func (st *State) ReadyAt(v int) int { return st.readyAt[v] }

// PredsLeft returns the number of v's unscheduled direct predecessors.
func (st *State) PredsLeft(v int) int { return st.predsLeft[v] }

// BusyAt returns the number of kind-k units already held at the given
// cycle (by previously issued operations, including non-fully-pipelined
// ones still occupying their unit).
func (st *State) BusyAt(k, cycle int) int {
	if cycle < len(st.busy[k]) {
		return st.busy[k][cycle]
	}
	return 0
}

// FreeSlots returns the number of unused units of resource kind k in the
// current cycle.
func (st *State) FreeSlots(k int) int { return st.M.Capacity(k) - st.BusyAt(k, st.Cycle) }

// FreeSlotsAt returns the number of unused kind-k units at an arbitrary
// cycle.
func (st *State) FreeSlotsAt(k, cycle int) int { return st.M.Capacity(k) - st.BusyAt(k, cycle) }

// Fits reports whether v's resource kind has a free unit for v's whole
// occupancy window starting at the current cycle.
func (st *State) Fits(v int) bool {
	c := st.SB.G.Op(v).Class
	k := st.M.KindOf(c)
	cap := st.M.Capacity(k)
	for t := st.Cycle; t < st.Cycle+st.M.Occupancy(c); t++ {
		if st.BusyAt(k, t) >= cap {
			return false
		}
	}
	return true
}

// Candidates returns the operations that can legally issue in the current
// cycle (dependence-ready and resource-feasible). The returned slice is
// reused across calls; callers must not retain it.
func (st *State) Candidates() []int {
	st.candBuf = st.candBuf[:0]
	for v := 0; v < len(st.IssueCycle); v++ {
		st.Stats.CandidateScans++
		if st.DepReady(v) && st.Fits(v) {
			st.candBuf = append(st.candBuf, v)
		}
	}
	telReadyQueue.Observe(int64(len(st.candBuf)))
	return st.candBuf
}

// place issues v in the current cycle.
func (st *State) place(v int) {
	st.IssueCycle[v] = st.Cycle
	st.Scheduled++
	c := st.SB.G.Op(v).Class
	k := st.M.KindOf(c)
	for t := st.Cycle; t < st.Cycle+st.M.Occupancy(c); t++ {
		for t >= len(st.busy[k]) {
			st.busy[k] = append(st.busy[k], 0)
		}
		st.busy[k][t]++
	}
	for _, e := range st.SB.G.Succs(v) {
		st.predsLeft[e.To]--
		if t := st.Cycle + e.Lat; t > st.readyAt[e.To] {
			st.readyAt[e.To] = t
		}
	}
	st.LastOp = v
}

// advance moves to the next cycle.
func (st *State) advance() {
	st.Cycle++
	st.LastOp = -1
	st.Stats.CycleAdvances++
}

// Picker selects the next operation to issue. Pick must return either an
// operation from the current candidate set (dependence-ready and
// resource-feasible in the current cycle) or -1 to advance to the next
// cycle. The engine never calls Pick once all operations are scheduled.
type Picker interface {
	Pick(st *State) int
}

// PickerFunc adapts a function to the Picker interface.
type PickerFunc func(st *State) int

// Pick implements Picker.
func (f PickerFunc) Pick(st *State) int { return f(st) }

// Run executes list scheduling with the given picker and returns the
// resulting schedule and the work statistics of the run.
func Run(sb *model.Superblock, m *model.Machine, p Picker) (*Schedule, Stats, error) {
	st := newState(sb, m)
	n := sb.G.NumOps()
	horizon := Horizon(sb) + n
	for st.Scheduled < n {
		if st.Cycle > horizon {
			return nil, st.Stats, fmt.Errorf("sched: picker made no progress by cycle %d on %q", st.Cycle, sb.Name)
		}
		v := p.Pick(st)
		st.Stats.Decisions++
		if v < 0 {
			st.advance()
			continue
		}
		if v >= n || !st.DepReady(v) || !st.Fits(v) {
			return nil, st.Stats, fmt.Errorf("sched: picker chose illegal op %d at cycle %d on %q", v, st.Cycle, sb.Name)
		}
		st.place(v)
	}
	telRuns.Inc()
	telOps.Add(int64(n))
	telCycles.Add(int64(st.Cycle) + 1)
	s := &Schedule{Cycle: append([]int(nil), st.IssueCycle...)}
	return s, st.Stats, nil
}
