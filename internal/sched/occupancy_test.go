package sched

import (
	"testing"

	"balance/internal/model"
)

// npGP2 is GP2 with a non-pipelined 3-cycle float multiplier.
func npGP2() *model.Machine { return model.GP2().WithOccupancy(model.FloatMul, 3) }

func TestOccupancySerializesUnit(t *testing.T) {
	// Two independent fmuls on a machine whose two GP units are held for 3
	// cycles each: they can run concurrently (2 units) but a third must
	// wait until a unit frees.
	b := model.NewBuilder("np")
	m0 := b.Op(model.FloatMul)
	m1 := b.Op(model.FloatMul)
	m2 := b.Op(model.FloatMul)
	b.Branch(0, m0, m1, m2)
	sb := b.MustBuild()

	s, _, err := ListSchedule(sb, npGP2(), IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sb, npGP2(), s); err != nil {
		t.Fatal(err)
	}
	if s.Cycle[m0] != 0 || s.Cycle[m1] != 0 {
		t.Errorf("first two fmuls at %d,%d, want 0,0", s.Cycle[m0], s.Cycle[m1])
	}
	if s.Cycle[m2] < 3 {
		t.Errorf("third fmul at %d, want >= 3 (units held)", s.Cycle[m2])
	}
	// On the fully pipelined GP2 the third fmul issues at cycle 1.
	s2, _, err := ListSchedule(sb, model.GP2(), IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cycle[m2] != 1 {
		t.Errorf("pipelined third fmul at %d, want 1", s2.Cycle[m2])
	}
}

func TestVerifyCatchesOccupancyViolation(t *testing.T) {
	b := model.NewBuilder("np")
	m0 := b.Op(model.FloatMul)
	m1 := b.Op(model.FloatMul)
	m2 := b.Op(model.FloatMul)
	br := b.Branch(0, m0, m1, m2)
	sb := b.MustBuild()

	s := NewSchedule(sb.G.NumOps())
	s.Cycle[m0], s.Cycle[m1] = 0, 0
	s.Cycle[m2] = 1 // overlaps both held units
	s.Cycle[br] = 4
	if err := Verify(sb, npGP2(), s); err == nil {
		t.Error("Verify accepted an occupancy violation")
	}
	s.Cycle[m2] = 3
	s.Cycle[br] = 6
	if err := Verify(sb, npGP2(), s); err != nil {
		t.Errorf("legal occupancy schedule rejected: %v", err)
	}
}

func TestOccupancyDoesNotBlockOtherKinds(t *testing.T) {
	// On FS4 a held float unit must not block integer issue.
	m := model.FS4().WithOccupancy(model.FloatDiv, 9)
	b := model.NewBuilder("np")
	d := b.Op(model.FloatDiv)
	i0 := b.Int()
	i1 := b.Int()
	b.Branch(0, d, i0, i1)
	sb := b.MustBuild()
	s, _, err := ListSchedule(sb, m, IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sb, m, s); err != nil {
		t.Fatal(err)
	}
	if s.Cycle[i0] != 0 || s.Cycle[i1] != 1 {
		t.Errorf("int ops at %d,%d, want 0,1", s.Cycle[i0], s.Cycle[i1])
	}
}
