package sched

import (
	"testing"

	"balance/internal/model"
)

// twoBlock builds ops 0,1,2 -> br3(0.25); chain 4 -> 5 -> br6.
func twoBlock(t *testing.T) *model.Superblock {
	t.Helper()
	b := model.NewBuilder("twoblock")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	b.Branch(0.25, o0, o1, o2)
	o4 := b.Int()
	o5 := b.Int(o4)
	b.Branch(0, o5)
	return b.MustBuild()
}

func TestListScheduleLegality(t *testing.T) {
	sb := twoBlock(t)
	for _, m := range model.Machines() {
		s, stats, err := ListSchedule(sb, m, IntsToFloats(sb.G.Heights()))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := Verify(sb, m, s); err != nil {
			t.Errorf("%s: illegal schedule: %v", m.Name, err)
		}
		if stats.Decisions == 0 {
			t.Errorf("%s: no decisions recorded", m.Name)
		}
	}
}

func TestCostAndBranchCycles(t *testing.T) {
	sb := twoBlock(t)
	s := NewSchedule(sb.G.NumOps())
	// Hand schedule on GP2: 0,4 / 1,2 / br3,5 / br6.
	cycles := map[int]int{0: 0, 4: 0, 1: 1, 2: 1, 3: 2, 5: 2, 6: 3}
	for v, c := range cycles {
		s.Cycle[v] = c
	}
	if err := Verify(sb, model.GP2(), s); err != nil {
		t.Fatalf("hand schedule rejected: %v", err)
	}
	// Cost = 0.25*(2+1) + 0.75*(3+1) = 3.75.
	if got := Cost(sb, s); got != 3.75 {
		t.Errorf("cost = %v, want 3.75", got)
	}
	bc := BranchCycles(sb, s)
	if bc[0] != 2 || bc[1] != 3 {
		t.Errorf("branch cycles = %v, want [2 3]", bc)
	}
	if l := s.Length(sb.G); l != 4 {
		t.Errorf("length = %d, want 4", l)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	sb := twoBlock(t)
	m := model.GP2()
	s := NewSchedule(sb.G.NumOps())
	for v := range s.Cycle {
		s.Cycle[v] = v // serial, legal on deps
	}
	if err := Verify(sb, m, s); err != nil {
		t.Fatalf("serial schedule rejected: %v", err)
	}

	dep := s.Clone()
	dep.Cycle[5] = 0 // 5 depends on 4 at cycle 4
	if err := Verify(sb, m, dep); err == nil {
		t.Error("Verify accepted dependence violation")
	}

	res := s.Clone()
	res.Cycle[0], res.Cycle[1], res.Cycle[2] = 0, 0, 0 // 3 ops on 2-issue
	if err := Verify(sb, m, res); err == nil {
		t.Error("Verify accepted resource violation")
	}

	un := s.Clone()
	un.Cycle[2] = -1
	if err := Verify(sb, m, un); err == nil {
		t.Error("Verify accepted unscheduled op")
	}
}

func TestResourceKindsRespected(t *testing.T) {
	// FS4 has one unit per kind: two loads can never share a cycle.
	b := model.NewBuilder("mem")
	l0 := b.Load()
	l1 := b.Load()
	b.Branch(0, l0, l1)
	sb := b.MustBuild()
	s, _, err := ListSchedule(sb, model.FS4(), IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycle[l0] == s.Cycle[l1] {
		t.Errorf("two loads share cycle %d on FS4", s.Cycle[l0])
	}
	if err := Verify(sb, model.FS4(), s); err != nil {
		t.Error(err)
	}
	// On GP2 they can share a cycle.
	s2, _, err := ListSchedule(sb, model.GP2(), IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cycle[l0] != s2.Cycle[l1] {
		t.Errorf("loads at %d and %d on GP2, want same cycle", s2.Cycle[l0], s2.Cycle[l1])
	}
}

func TestLatenciesRespected(t *testing.T) {
	b := model.NewBuilder("lat")
	l := b.Load() // latency 2
	o := b.Int(l)
	f := b.Op(model.FloatMul, o) // latency 3
	g := b.Int(f)
	b.Branch(0, g)
	sb := b.MustBuild()
	s, _, err := ListSchedule(sb, model.GP4(), IntsToFloats(sb.G.Heights()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycle[o]-s.Cycle[l] < 2 {
		t.Error("load latency violated")
	}
	if s.Cycle[g]-s.Cycle[f] < 3 {
		t.Error("fmul latency violated")
	}
}

func TestKeyPickerTieBreaking(t *testing.T) {
	// Two equal-priority ops: the smaller ID goes first.
	b := model.NewBuilder("tie")
	b.Int()
	b.Int()
	b.Branch(0)
	sb := b.MustBuild()
	s, _, err := ListSchedule(sb, model.GP1(), []float64{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycle[0] != 0 || s.Cycle[1] != 1 {
		t.Errorf("tie break wrong: op0@%d op1@%d", s.Cycle[0], s.Cycle[1])
	}
	// Secondary key flips the order.
	s2, _, err := ListSchedule(sb, model.GP1(), []float64{1, 1, 0}, []float64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Cycle[1] != 0 {
		t.Errorf("secondary key ignored: op1@%d", s2.Cycle[1])
	}
}

func TestPickerErrorOnIllegalChoice(t *testing.T) {
	sb := twoBlock(t)
	bad := PickerFunc(func(st *State) int { return sb.Branches[1] }) // never ready first
	if _, _, err := Run(sb, model.GP2(), bad); err == nil {
		t.Error("engine accepted an illegal pick")
	}
}

func TestAsapSchedule(t *testing.T) {
	sb := twoBlock(t)
	g := sb.G
	n := g.NumOps()
	include := model.NewBitset(n)
	br := sb.Branches[0]
	g.PredClosure(br).ForEach(include.Set)
	include.Set(br)
	cycle, _ := AsapSchedule(sb, model.GP2(), include, br)
	// 3 predecessors on 2 units: preds at 0,0,1; branch at 2.
	if cycle != 2 {
		t.Errorf("ASAP cycle of br3 = %d, want 2", cycle)
	}
	cycleWide, _ := AsapSchedule(sb, model.GP4(), include, br)
	if cycleWide != 1 {
		t.Errorf("ASAP cycle of br3 on GP4 = %d, want 1", cycleWide)
	}
}

func TestHorizon(t *testing.T) {
	sb := twoBlock(t)
	if h := Horizon(sb); h < sb.G.NumOps() {
		t.Errorf("horizon %d below op count", h)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := Stats{Decisions: 1, CycleAdvances: 2, CandidateScans: 3, PriorityWork: 4, FullUpdates: 5, LightUpdates: 6}
	b := a
	a.Add(&b)
	if a.Total() != 2*b.Total() {
		t.Errorf("Add/Total wrong: %d vs %d", a.Total(), b.Total())
	}
}
