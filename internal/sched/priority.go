package sched

import "balance/internal/model"

// KeyPicker is a static-priority picker: each operation has a vector of
// priority keys, compared lexicographically (higher is better); ties are
// broken by smaller operation ID, making every run deterministic.
//
// Each Keys[level] is a per-operation slice; level 0 is the primary key.
type KeyPicker struct {
	Keys [][]float64
}

// Pick implements Picker: it returns the highest-priority candidate that
// can issue in the current cycle, or -1 if none exists.
func (kp *KeyPicker) Pick(st *State) int {
	best := -1
	for _, v := range st.Candidates() {
		st.Stats.PriorityWork++
		if best < 0 || kp.less(best, v) {
			best = v
		}
	}
	return best
}

// less reports whether a has strictly lower priority than b.
func (kp *KeyPicker) less(a, b int) bool {
	for _, key := range kp.Keys {
		if key[a] != key[b] {
			return key[a] < key[b]
		}
	}
	return b < a // prefer the smaller ID on full ties
}

// ListSchedule runs static-priority list scheduling with the given key
// vectors and returns the schedule.
func ListSchedule(sb *model.Superblock, m *model.Machine, keys ...[]float64) (*Schedule, Stats, error) {
	return Run(sb, m, &KeyPicker{Keys: keys})
}

// IntsToFloats converts an integer key (e.g. heights) to a float64 key.
func IntsToFloats(in []int) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// Negate returns the negated key, turning a "smaller is better" metric into
// a KeyPicker priority.
func Negate(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = -v
	}
	return out
}

// AsapSchedule schedules the subgraph induced by the operations in include
// (a bitset over op IDs, which must be predecessor-closed) using
// critical-path list scheduling, and returns the issue cycle of target.
// It is the "schedule the dependence graph rooted at b using a secondary
// heuristic" primitive of the G* heuristic.
func AsapSchedule(sb *model.Superblock, m *model.Machine, include *model.Bitset, target int) (int, Stats) {
	g := sb.G
	n := g.NumOps()
	// The included ops as an ascending list: the candidate scans below walk
	// the members only, not all n ops.
	members := include.AppendTo(make([]int, 0, include.Count()))
	// Heights restricted to the included subgraph.
	heights := make([]float64, n)
	topo := g.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if !include.Has(v) {
			continue
		}
		for _, e := range g.Succs(v) {
			if !include.Has(e.To) {
				continue
			}
			if h := heights[e.To] + float64(e.Lat); h > heights[v] {
				heights[v] = h
			}
		}
	}

	var stats Stats
	predsLeft := make([]int, n)
	readyAt := make([]int, n)
	issue := make([]int, n)
	remaining := 0
	for v := 0; v < n; v++ {
		issue[v] = -1
	}
	for _, v := range members {
		remaining++
		for _, e := range g.Preds(v) {
			if include.Has(e.To) {
				predsLeft[v]++
			}
		}
	}
	busy := make([][]int, m.Kinds())
	busyAt := func(k, t int) int {
		if t < len(busy[k]) {
			return busy[k][t]
		}
		return 0
	}
	hold := func(c model.Class, t int) {
		k := m.KindOf(c)
		for u := t; u < t+m.Occupancy(c); u++ {
			for u >= len(busy[k]) {
				busy[k] = append(busy[k], 0)
			}
			busy[k][u]++
		}
	}
	fits := func(c model.Class, t int) bool {
		k := m.KindOf(c)
		for u := t; u < t+m.Occupancy(c); u++ {
			if busyAt(k, u) >= m.Capacity(k) {
				return false
			}
		}
		return true
	}
	cycle := 0
	for remaining > 0 {
		best := -1
		for _, v := range members {
			stats.CandidateScans++
			if issue[v] >= 0 || predsLeft[v] > 0 || readyAt[v] > cycle {
				continue
			}
			if !fits(g.Op(v).Class, cycle) {
				continue
			}
			if best < 0 || heights[v] > heights[best] || (heights[v] == heights[best] && v < best) {
				best = v
			}
		}
		if best < 0 {
			cycle++
			stats.CycleAdvances++
			continue
		}
		issue[best] = cycle
		hold(g.Op(best).Class, cycle)
		remaining--
		stats.Decisions++
		for _, e := range g.Succs(best) {
			if include.Has(e.To) {
				predsLeft[e.To]--
				if t := cycle + e.Lat; t > readyAt[e.To] {
					readyAt[e.To] = t
				}
			}
		}
	}
	return issue[target], stats
}
