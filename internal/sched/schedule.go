// Package sched provides the cycle-accurate scheduling substrate shared by
// every heuristic: schedule representation, legality verification, weighted
// completion cost, and a list-scheduling engine driven by pluggable pickers.
//
// Cycles are 0-indexed. A fully pipelined operation occupies one functional
// unit of its resource kind during its issue cycle only; an operation issued
// at cycle t with latency l produces its result at cycle t+l. The cost of a
// superblock schedule is the exit-probability-weighted sum of branch
// completion times, Σ_i w_i·(t_i + l_br), as in Section 2 of the paper.
package sched

import (
	"fmt"

	"balance/internal/model"
)

// Schedule assigns an issue cycle to every operation of a superblock.
type Schedule struct {
	// Cycle[v] is the issue cycle of operation v.
	Cycle []int
}

// NewSchedule returns a schedule with every operation unscheduled (-1).
func NewSchedule(n int) *Schedule {
	s := &Schedule{Cycle: make([]int, n)}
	for i := range s.Cycle {
		s.Cycle[i] = -1
	}
	return s
}

// Clone returns an independent copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{Cycle: make([]int, len(s.Cycle))}
	copy(c.Cycle, s.Cycle)
	return c
}

// Length returns the number of cycles until the last operation completes.
func (s *Schedule) Length(g *model.Graph) int {
	max := 0
	for v, t := range s.Cycle {
		if c := t + g.Op(v).Latency; c > max {
			max = c
		}
	}
	return max
}

// Cost returns the weighted completion time of the schedule:
// Σ_i Prob[i]·(Cycle[branch_i] + l_br).
func Cost(sb *model.Superblock, s *Schedule) float64 {
	total := 0.0
	for i, b := range sb.Branches {
		total += sb.Prob[i] * float64(s.Cycle[b]+model.BranchLatency)
	}
	return total
}

// BranchCycles returns the issue cycle of each exit branch in order.
func BranchCycles(sb *model.Superblock, s *Schedule) []int {
	out := make([]int, len(sb.Branches))
	for i, b := range sb.Branches {
		out[i] = s.Cycle[b]
	}
	return out
}

// Verify checks that the schedule is legal on the machine: every operation
// is scheduled at a non-negative cycle, every dependence latency is
// honored, and no cycle over-subscribes a resource kind.
func Verify(sb *model.Superblock, m *model.Machine, s *Schedule) error {
	g := sb.G
	n := g.NumOps()
	if len(s.Cycle) != n {
		return fmt.Errorf("sched: schedule has %d entries for %d ops", len(s.Cycle), n)
	}
	maxCycle := 0
	for v := 0; v < n; v++ {
		t := s.Cycle[v]
		if t < 0 {
			return fmt.Errorf("sched: op %d unscheduled", v)
		}
		if t > maxCycle {
			maxCycle = t
		}
		for _, e := range g.Succs(v) {
			if s.Cycle[e.To] < t+e.Lat {
				return fmt.Errorf("sched: dependence %d->%d violated: %d < %d+%d",
					v, e.To, s.Cycle[e.To], t, e.Lat)
			}
		}
	}
	// Occupancy can extend beyond the last issue cycle.
	maxOcc := 1
	for c := model.Class(0); int(c) < model.NumClasses; c++ {
		if o := m.Occupancy(c); o > maxOcc {
			maxOcc = o
		}
	}
	used := make([][]int, m.Kinds())
	for k := range used {
		used[k] = make([]int, maxCycle+maxOcc)
	}
	for v := 0; v < n; v++ {
		c := g.Op(v).Class
		k := m.KindOf(c)
		for t := s.Cycle[v]; t < s.Cycle[v]+m.Occupancy(c); t++ {
			used[k][t]++
		}
	}
	for k := range used {
		for c, u := range used[k] {
			if u > m.Capacity(k) {
				return fmt.Errorf("sched: cycle %d uses %d %s units, capacity %d",
					c, u, m.KindName(k), m.Capacity(k))
			}
		}
	}
	return nil
}

// Horizon returns a safe upper bound on the number of cycles any reasonable
// schedule of the superblock needs: the serial schedule length.
func Horizon(sb *model.Superblock) int {
	h := 0
	for _, op := range sb.G.Ops() {
		l := op.Latency
		if l < 1 {
			l = 1
		}
		h += l
	}
	return h + 1
}
