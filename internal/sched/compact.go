package sched

import "balance/internal/model"

// Compact post-processes a legal schedule by moving operations to earlier
// cycles where dependences and resources allow, processing ops in issue
// order (so each op moves against an already-compacted prefix). The result
// is legal and every operation's issue cycle is ≤ its original cycle, so
// the weighted completion cost never increases. It returns the compacted
// schedule and the number of operations that moved.
func Compact(sb *model.Superblock, m *model.Machine, s *Schedule) (*Schedule, int) {
	g := sb.G
	n := g.NumOps()
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	// Issue order, ID tie-break: deterministic and prefix-consistent.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if s.Cycle[a] < s.Cycle[b] || (s.Cycle[a] == s.Cycle[b] && a < b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}

	out := NewSchedule(n)
	busy := make([][]int, m.Kinds())
	busyAt := func(k, t int) int {
		if t < len(busy[k]) {
			return busy[k][t]
		}
		return 0
	}
	hold := func(c model.Class, t int) {
		k := m.KindOf(c)
		for u := t; u < t+m.Occupancy(c); u++ {
			for u >= len(busy[k]) {
				busy[k] = append(busy[k], 0)
			}
			busy[k][u]++
		}
	}
	fits := func(c model.Class, t int) bool {
		k := m.KindOf(c)
		for u := t; u < t+m.Occupancy(c); u++ {
			if busyAt(k, u) >= m.Capacity(k) {
				return false
			}
		}
		return true
	}

	moved := 0
	for _, v := range order {
		ready := 0
		for _, e := range g.Preds(v) {
			if t := out.Cycle[e.To] + e.Lat; t > ready {
				ready = t
			}
		}
		c := ready
		cls := g.Op(v).Class
		for c < s.Cycle[v] && !fits(cls, c) {
			c++
		}
		if c > s.Cycle[v] {
			// Never move later than the original slot. No fit check is
			// needed there: ops are processed in issue order and only ever
			// move earlier, so for any cycle t ≥ v's original cycle the
			// compacted prefix occupies at most what the original schedule
			// did — which had room for v.
			c = s.Cycle[v]
		}
		out.Cycle[v] = c
		hold(cls, c)
		if c < s.Cycle[v] {
			moved++
		}
	}
	return out, moved
}
