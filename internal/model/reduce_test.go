package model_test

import (
	"testing"
	"testing/quick"

	"balance/internal/model"
	"balance/internal/testutil"
)

func TestReduceEdgesDropsRedundant(t *testing.T) {
	// 0 -> 1 -> 2 plus a redundant direct 0 -> 2 (latency 1 < path 2).
	b := model.NewBuilder("red")
	o0 := b.Int()
	o1 := b.Int(o0)
	o2 := b.Int(o1)
	b.Dep(o0, o2)
	b.Branch(0, o2)
	sb := b.MustBuild()
	if sb.G.NumEdges() != 4 {
		t.Fatalf("fixture has %d edges, want 4", sb.G.NumEdges())
	}
	red := model.ReduceEdges(sb)
	if red.G.NumEdges() != 3 {
		t.Errorf("reduced to %d edges, want 3", red.G.NumEdges())
	}
	// The surviving structure must preserve all early times.
	a, c := sb.G.EarlyDC(), red.G.EarlyDC()
	for v := range a {
		if a[v] != c[v] {
			t.Errorf("EarlyDC[%d] changed: %d -> %d", v, a[v], c[v])
		}
	}
}

func TestReduceEdgesKeepsEqualLatencyPaths(t *testing.T) {
	// Direct edge 0 -> 2 with latency 2 is matched (not exceeded) by the
	// path through 1 — it must be kept (dropping needs strict dominance).
	b := model.NewBuilder("eq")
	o0 := b.Int()
	o1 := b.Int(o0)
	o2 := b.AddOp(model.Int)
	b.Dep(o1, o2)
	b.DepLatency(o0, o2, 2)
	b.Branch(0, o2)
	sb := b.MustBuild()
	red := model.ReduceEdges(sb)
	found := false
	for _, e := range red.G.Succs(0) {
		if e.To == 2 {
			found = true
		}
	}
	if !found {
		t.Error("equal-latency edge dropped")
	}
}

// TestQuickReduceEdgesPreservesSemantics: reduction never changes early
// times, heights, closures, or branch structure.
func TestQuickReduceEdgesPreservesSemantics(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		sb := q.SB
		red := model.ReduceEdges(sb)
		if err := red.Validate(); err != nil {
			t.Logf("reduced invalid: %v", err)
			return false
		}
		if red.G.NumEdges() > sb.G.NumEdges() {
			return false
		}
		a, b := sb.G.EarlyDC(), red.G.EarlyDC()
		for v := range a {
			if a[v] != b[v] {
				return false
			}
		}
		ha, hb := sb.G.Heights(), red.G.Heights()
		for v := range ha {
			if ha[v] != hb[v] {
				return false
			}
		}
		for _, br := range sb.Branches {
			ca, cb := sb.G.PredClosure(br), red.G.PredClosure(br)
			if ca.Count() != cb.Count() {
				return false
			}
		}
		return len(red.Branches) == len(sb.Branches) && red.Freq == sb.Freq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
