package model

import "fmt"

// ReduceEdges returns a copy of the superblock with redundant dependence
// edges removed: an edge u→v of latency l is dropped when some other path
// from u to v has total latency strictly greater than l, because the
// transitive constraint already dominates it. (Edges matched exactly by an
// alternate path are kept — dropping them would require proving the
// alternate path does not include the edge itself.)
//
// Reduction never changes the set of legal schedules, so every bound and
// every schedule cost is preserved; it only shrinks the graphs the
// algorithms traverse.
func ReduceEdges(sb *Superblock) *Superblock {
	g := sb.G
	n := g.NumOps()

	b := NewBuilder(sb.Name)
	b.SetFreq(sb.Freq)
	nextBranch := 0
	for v := 0; v < n; v++ {
		op := g.Op(v)
		if op.IsBranch() {
			if nextBranch >= len(sb.Branches) || sb.Branches[nextBranch] != v {
				panic(fmt.Sprintf("model: branches of %q are not in ascending ID order", sb.Name))
			}
			b.Branch(sb.Prob[nextBranch])
			nextBranch++
			continue
		}
		b.AddOpLatency(op.Class, op.Latency)
	}

	// dist[u→*] longest paths; recomputed per source over the topological
	// order. dist[x] = longest latency path u→x, -1 if unreachable.
	topo := g.Topo()
	pos := make([]int, n)
	for i, v := range topo {
		pos[v] = i
	}
	dist := make([]int, n)
	for _, u := range topo {
		for i := range dist {
			dist[i] = -1
		}
		dist[u] = 0
		for i := pos[u]; i < len(topo); i++ {
			x := topo[i]
			if dist[x] < 0 {
				continue
			}
			for _, e := range g.Succs(x) {
				if d := dist[x] + e.Lat; d > dist[e.To] {
					dist[e.To] = d
				}
			}
		}
		for _, e := range g.Succs(u) {
			// Keep the edge unless a strictly longer path dominates it.
			if dist[e.To] > e.Lat {
				// Skip implicit control edges between consecutive branches
				// only if a longer path exists too — the Builder re-adds
				// them regardless, and mergeParallel keeps the max latency.
				continue
			}
			b.DepLatency(u, e.To, e.Lat)
		}
	}
	out, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("model: edge reduction of %q failed: %v", sb.Name, err))
	}
	return out
}
