package model

import (
	"strings"
	"testing"
)

func TestMachineConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGP(0) },
		func() { NewFS(0, 1, 1, 1) },
		func() { NewFS(1, 1, 1, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMachineKindNames(t *testing.T) {
	gp := GP2()
	if gp.KindName(0) != "gp" {
		t.Errorf("GP kind name %q", gp.KindName(0))
	}
	fs := FS4()
	want := []string{"int", "mem", "float", "branch"}
	for k, w := range want {
		if fs.KindName(k) != w {
			t.Errorf("FS kind %d = %q, want %q", k, fs.KindName(k), w)
		}
	}
}

func TestMachineOccupancyNaming(t *testing.T) {
	m := FS4().WithOccupancy(FloatMul, 3)
	if !strings.Contains(m.Name, "fmul*3") {
		t.Errorf("occupancy machine name %q", m.Name)
	}
	// Occupancy 1 must not rename.
	same := FS4().WithOccupancy(FloatMul, 1)
	if same.Name != "FS4" {
		t.Errorf("unit occupancy renamed the machine: %q", same.Name)
	}
}

func TestResourceAndClassStringFallbacks(t *testing.T) {
	if s := Resource(99).String(); !strings.Contains(s, "99") {
		t.Errorf("resource fallback %q", s)
	}
	if s := Class(99).String(); !strings.Contains(s, "99") {
		t.Errorf("class fallback %q", s)
	}
}

func TestBranchIsBranch(t *testing.T) {
	if !(Op{Class: Branch}).IsBranch() || (Op{Class: Int}).IsBranch() {
		t.Error("IsBranch wrong")
	}
}

func TestGraphNumEdges(t *testing.T) {
	b := NewBuilder("edges")
	o0 := b.Int()
	o1 := b.Int(o0)
	b.Branch(0, o0, o1)
	sb := b.MustBuild()
	if got := sb.G.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
}

func TestWithProbs(t *testing.T) {
	b := NewBuilder("wp")
	o := b.Int()
	b.Branch(0.2, o)
	b.Branch(0)
	sb := b.MustBuild()
	clone := sb.WithProbs([]float64{0.9, 0.1})
	if clone.Prob[0] != 0.9 || sb.Prob[0] != 0.2 {
		t.Error("WithProbs wrong or mutated original")
	}
	if err := clone.Validate(); err != nil {
		t.Error(err)
	}
}

func TestWeightedProbPrefix(t *testing.T) {
	b := NewBuilder("prefix")
	b.Branch(0.25)
	b.Branch(0.25)
	b.Branch(0)
	sb := b.MustBuild()
	pre := sb.WeightedProbPrefix()
	want := []float64{0.25, 0.5, 1.0}
	for i, w := range want {
		if diff := pre[i] - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("prefix[%d] = %v, want %v", i, pre[i], w)
		}
	}
}
