package model

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers, used to
// represent predecessor closures of branches. The zero value of a Bitset is
// not usable; allocate with NewBitset.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the bitset (the n passed to NewBitset).
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or adds every element of other to b.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Clone returns an independent copy of the set.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Reset empties the set.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// AppendTo appends every element of the set to dst in increasing order and
// returns the extended slice. It is the allocation-free counterpart of
// ForEach for callers that collect the members into a reusable buffer.
func (b *Bitset) AppendTo(dst []int) []int {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, wi*64+bit)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every element of the set in increasing order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}
