package model

import "testing"

// npMachine returns GP2 with non-pipelined float multiplies (occupancy 3)
// and divides (occupancy 9).
func npMachine() *Machine {
	return GP2().WithOccupancy(FloatMul, 3).WithOccupancy(FloatDiv, 9)
}

func TestWithOccupancy(t *testing.T) {
	m := npMachine()
	if m.Occupancy(FloatMul) != 3 || m.Occupancy(FloatDiv) != 9 || m.Occupancy(Int) != 1 {
		t.Fatalf("occupancies wrong: %d %d %d", m.Occupancy(FloatMul), m.Occupancy(FloatDiv), m.Occupancy(Int))
	}
	if m.FullyPipelined() {
		t.Error("non-pipelined machine reported as fully pipelined")
	}
	if GP2().FullyPipelined() != true {
		t.Error("GP2 must be fully pipelined")
	}
	// The base machine must be unaffected.
	base := GP2()
	_ = base.WithOccupancy(FloatMul, 2)
	if base.Occupancy(FloatMul) != 1 {
		t.Error("WithOccupancy mutated the receiver")
	}
}

func TestWithOccupancyPanics(t *testing.T) {
	cases := []func(){
		func() { GP2().WithOccupancy(Int, 2) },      // occupancy > latency
		func() { GP2().WithOccupancy(FloatMul, 0) }, // below 1
		func() { GP2().WithOccupancy(FloatMul, 4) }, // above latency
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestExpandOccupancyIdentityWhenPipelined(t *testing.T) {
	b := NewBuilder("x")
	o := b.Int()
	b.Branch(0, o)
	sb := b.MustBuild()
	got, m := ExpandOccupancy(sb, GP2())
	if got != sb || m != nil {
		t.Error("expansion of a fully pipelined machine must be the identity")
	}
}

func TestExpandOccupancyStructure(t *testing.T) {
	b := NewBuilder("np")
	mul := b.Op(FloatMul) // occupancy 3 on npMachine
	use := b.Int(mul)     // edge latency 3 (FloatMul latency)
	b.Branch(0, use)
	sb := b.MustBuild()

	exp, origOf := ExpandOccupancy(sb, npMachine())
	// mul expands to 3 ops: original count 3 + 2 pseudo = 5.
	if exp.G.NumOps() != 5 {
		t.Fatalf("expanded to %d ops, want 5", exp.G.NumOps())
	}
	if len(origOf) != 5 {
		t.Fatalf("mapping has %d entries", len(origOf))
	}
	// origOf: mul, pseudo, pseudo, use, branch.
	want := []int{0, 0, 0, 1, 2}
	for i, w := range want {
		if origOf[i] != w {
			t.Errorf("origOf[%d] = %d, want %d", i, origOf[i], w)
		}
	}
	// The chain edges are unit latency and the outgoing edge latency is
	// reduced by occ-1 = 2 (3 -> 1).
	early := exp.G.EarlyDC()
	// mul at 0, pseudos at 1, 2; use ≥ tail + 1 = 3 (same as original).
	origEarly := sb.G.EarlyDC()
	if early[3] != origEarly[1] {
		t.Errorf("dependence early of use changed: %d vs %d", early[3], origEarly[1])
	}
	if err := exp.Validate(); err != nil {
		t.Fatal(err)
	}
	if exp.NumBranches() != 1 || exp.Prob[0] != 1 {
		t.Error("branch structure lost in expansion")
	}
}

func TestExpandOccupancyPreservesProbabilitiesAndFreq(t *testing.T) {
	b := NewBuilder("np2")
	f := b.Op(FloatDiv)
	b.Branch(0.4, f)
	g := b.Int()
	b.Branch(0, g)
	b.SetFreq(17)
	sb := b.MustBuild()
	exp, _ := ExpandOccupancy(sb, npMachine())
	if exp.Freq != 17 {
		t.Errorf("freq = %v", exp.Freq)
	}
	if len(exp.Prob) != 2 || exp.Prob[0] != 0.4 {
		t.Errorf("probs = %v", exp.Prob)
	}
	// FloatDiv occupancy 9 adds 8 pseudo-ops.
	if exp.G.NumOps() != sb.G.NumOps()+8 {
		t.Errorf("expanded to %d ops, want %d", exp.G.NumOps(), sb.G.NumOps()+8)
	}
}
