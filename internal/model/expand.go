package model

import "fmt"

// ExpandOccupancy models a superblock for a machine with non-fully-
// pipelined units using the Rim & Jain construction (Section 4.1 of the
// paper): every operation whose class holds its unit for occ > 1 cycles is
// replaced by a chain of occ unit-occupancy operations of the same class,
// connected by unit-latency edges; outgoing dependences move to the chain
// tail with their latency reduced by occ-1 (occupancy never exceeds
// latency, so the reduction is non-negative and the original issue-to-issue
// constraints are preserved exactly).
//
// The expanded superblock is fully pipelined by construction, so every
// bound computed on it with the plain per-cycle capacities is a valid bound
// for the original problem. The second result maps expanded op IDs back to
// the original IDs (pseudo-ops map to the operation they expand).
//
// When the machine is fully pipelined the original superblock is returned
// unchanged with an identity mapping of nil.
func ExpandOccupancy(sb *Superblock, m *Machine) (*Superblock, []int) {
	if m.FullyPipelined() {
		return sb, nil
	}
	g := sb.G
	n := g.NumOps()
	b := NewBuilder(sb.Name)
	b.SetFreq(sb.Freq)

	first := make([]int, n) // original -> expanded primary op
	last := make([]int, n)  // original -> tail of its occupancy chain
	var origOf []int

	nextBranch := 0
	for v := 0; v < n; v++ {
		op := g.Op(v)
		var id int
		if op.IsBranch() {
			if nextBranch >= len(sb.Branches) || sb.Branches[nextBranch] != v {
				panic(fmt.Sprintf("model: branches of %q are not in ascending ID order", sb.Name))
			}
			id = b.Branch(sb.Prob[nextBranch])
			nextBranch++
		} else {
			id = b.AddOpLatency(op.Class, op.Latency)
		}
		first[v], last[v] = id, id
		origOf = append(origOf, v)
		for i := 1; i < m.Occupancy(op.Class); i++ {
			p := b.AddOpLatency(op.Class, 1)
			b.DepLatency(last[v], p, 1)
			last[v] = p
			origOf = append(origOf, v)
		}
	}
	for v := 0; v < n; v++ {
		occ := m.Occupancy(g.Op(v).Class)
		for _, e := range g.Succs(v) {
			lat := e.Lat - (occ - 1)
			if lat < 0 {
				lat = 0
			}
			b.DepLatency(last[v], first[e.To], lat)
		}
	}
	out, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("model: occupancy expansion of %q failed: %v", sb.Name, err))
	}
	return out, origOf
}
