package model

import (
	"fmt"
	"sort"
	"sync"
)

// Edge is a directed dependence between two operations. The latency is the
// minimum number of cycles between the issue of the source and the issue of
// the destination (issue-to-issue).
type Edge struct {
	// To (or From, for predecessor edges) is the other endpoint's ID.
	To int
	// Lat is the issue-to-issue latency of the dependence in cycles.
	Lat int
}

// Graph is a dependence DAG over a dense set of operations. Graphs are
// built with a Builder and are immutable afterwards; all scheduling and
// bound computations treat them as read-only.
type Graph struct {
	ops  []Op
	succ [][]Edge // succ[v] lists edges v -> w
	pred [][]Edge // pred[v] lists edges u -> v as {From:u}

	topo    []int     // a topological order of op IDs
	closure []*Bitset // closure[v] = transitive predecessors of v (excluding v), lazily built

	distMu sync.Mutex
	distTo map[int][]int // target -> LongestToTarget vector, lazily built
}

// NumOps returns the number of operations in the graph.
func (g *Graph) NumOps() int { return len(g.ops) }

// Op returns the operation with the given ID.
func (g *Graph) Op(id int) Op { return g.ops[id] }

// Ops returns the operations slice. Callers must not modify it.
func (g *Graph) Ops() []Op { return g.ops }

// Succs returns the outgoing dependence edges of v. Callers must not modify
// the returned slice.
func (g *Graph) Succs(v int) []Edge { return g.succ[v] }

// Preds returns the incoming dependence edges of v, with Edge.To holding the
// predecessor's ID. Callers must not modify the returned slice.
func (g *Graph) Preds(v int) []Edge { return g.pred[v] }

// NumEdges returns the total number of dependence edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.succ {
		n += len(es)
	}
	return n
}

// Topo returns a topological order of the operation IDs. Callers must not
// modify the returned slice.
func (g *Graph) Topo() []int { return g.topo }

// computeTopo fills g.topo using Kahn's algorithm and reports whether the
// graph is acyclic.
func (g *Graph) computeTopo() bool {
	n := len(g.ops)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, e := range g.succ[v] {
			indeg[e.To]++
		}
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.succ[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		return false
	}
	g.topo = order
	return true
}

// PredClosure returns the set of transitive predecessors of v (excluding v
// itself). The result is cached; callers must not modify it.
func (g *Graph) PredClosure(v int) *Bitset {
	if g.closure == nil {
		g.buildClosures()
	}
	return g.closure[v]
}

// buildClosures computes all predecessor closures in one pass over a
// topological order.
func (g *Graph) buildClosures() {
	n := len(g.ops)
	g.closure = make([]*Bitset, n)
	for _, v := range g.topo {
		c := NewBitset(n)
		for _, e := range g.pred[v] {
			c.Set(e.To)
			c.Or(g.closure[e.To])
		}
		g.closure[v] = c
	}
}

// LongestToTarget returns, for every transitive predecessor v of target (and
// target itself), the longest dependence-path latency dist(v -> target).
// Entries for operations that do not precede target are -1.
//
// The vector is cached per target (bound and heuristic code asks for the
// same targets — typically the branches — over and over); callers must not
// modify the returned slice.
func (g *Graph) LongestToTarget(target int) []int {
	g.distMu.Lock()
	defer g.distMu.Unlock()
	if d, ok := g.distTo[target]; ok {
		return d
	}
	if g.distTo == nil {
		g.distTo = make(map[int][]int)
	}
	d := g.longestToTarget(target)
	g.distTo[target] = d
	return d
}

// longestToTarget computes the LongestToTarget vector (uncached).
func (g *Graph) longestToTarget(target int) []int {
	n := len(g.ops)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[target] = 0
	// Walk the topological order backwards; only predecessors of target can
	// gain a finite distance.
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		if dist[v] < 0 {
			continue
		}
		for _, e := range g.pred[v] {
			if d := dist[v] + e.Lat; d > dist[e.To] {
				dist[e.To] = d
			}
		}
	}
	return dist
}

// EarlyDC returns the dependence-constrained earliest issue cycle of every
// operation (the paper's EarlyDC): the longest latency path from any source.
func (g *Graph) EarlyDC() []int {
	early := make([]int, len(g.ops))
	for _, v := range g.topo {
		for _, e := range g.succ[v] {
			if t := early[v] + e.Lat; t > early[e.To] {
				early[e.To] = t
			}
		}
	}
	return early
}

// CriticalPath returns the dependence-only critical path of the graph: the
// maximum over operations v of EarlyDC[v] + latency(v), i.e. the earliest
// cycle by which all results could complete ignoring resources.
func (g *Graph) CriticalPath() int {
	early := g.EarlyDC()
	cp := 0
	for v, t := range early {
		if c := t + g.ops[v].Latency; c > cp {
			cp = c
		}
	}
	return cp
}

// Heights returns, for every operation, the longest latency path from the
// operation to any sink (the classic critical-path priority).
func (g *Graph) Heights() []int {
	h := make([]int, len(g.ops))
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		for _, e := range g.succ[v] {
			if d := h[e.To] + e.Lat; d > h[v] {
				h[v] = d
			}
		}
	}
	return h
}

// validate checks structural invariants: edge endpoints in range,
// non-negative latencies, no self-edges, acyclicity.
func (g *Graph) validate() error {
	n := len(g.ops)
	for v := 0; v < n; v++ {
		if g.ops[v].ID != v {
			return fmt.Errorf("model: op %d has mismatched ID %d", v, g.ops[v].ID)
		}
		if g.ops[v].Latency < 0 {
			return fmt.Errorf("model: op %d has negative latency %d", v, g.ops[v].Latency)
		}
		for _, e := range g.succ[v] {
			if e.To < 0 || e.To >= n {
				return fmt.Errorf("model: edge %d->%d out of range", v, e.To)
			}
			if e.To == v {
				return fmt.Errorf("model: self edge on op %d", v)
			}
			if e.Lat < 0 {
				return fmt.Errorf("model: edge %d->%d has negative latency %d", v, e.To, e.Lat)
			}
		}
	}
	if g.topo == nil && !g.computeTopo() {
		return fmt.Errorf("model: dependence graph has a cycle")
	}
	return nil
}

// sortEdges puts the edge lists in a deterministic order.
func (g *Graph) sortEdges() {
	for v := range g.succ {
		es := g.succ[v]
		sort.Slice(es, func(i, j int) bool {
			if es[i].To != es[j].To {
				return es[i].To < es[j].To
			}
			return es[i].Lat < es[j].Lat
		})
		ps := g.pred[v]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].To != ps[j].To {
				return ps[i].To < ps[j].To
			}
			return ps[i].Lat < ps[j].Lat
		})
	}
}
