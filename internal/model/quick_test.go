package model_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"balance/internal/model"
	"balance/internal/testutil"
)

var quickCfg = &quick.Config{MaxCount: 120}

// TestQuickSuperblockInvariants: every generated superblock validates, its
// topological order respects the edges, and derived quantities are
// consistent.
func TestQuickSuperblockInvariants(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		sb := q.SB
		if err := sb.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		g := sb.G
		pos := make([]int, g.NumOps())
		for i, v := range g.Topo() {
			pos[v] = i
		}
		for v := 0; v < g.NumOps(); v++ {
			for _, e := range g.Succs(v) {
				if pos[v] >= pos[e.To] {
					t.Logf("topo violates edge %d->%d", v, e.To)
					return false
				}
			}
		}
		// EarlyDC is consistent: early[w] >= early[v] + lat for every edge.
		early := g.EarlyDC()
		for v := 0; v < g.NumOps(); v++ {
			for _, e := range g.Succs(v) {
				if early[e.To] < early[v]+e.Lat {
					return false
				}
			}
		}
		// Heights are consistent the other way.
		h := g.Heights()
		for v := 0; v < g.NumOps(); v++ {
			for _, e := range g.Succs(v) {
				if h[v] < h[e.To]+e.Lat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPredClosureMatchesDistances: v is in the closure of target iff
// the longest path distance is defined.
func TestQuickPredClosureMatchesDistances(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		g := q.SB.G
		for _, b := range q.SB.Branches {
			dist := g.LongestToTarget(b)
			cl := g.PredClosure(b)
			for v := 0; v < g.NumOps(); v++ {
				inCl := cl.Has(v) || v == b
				if inCl != (dist[v] >= 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBlocksMonotone: block indices never decrease along any edge that
// stays within the derived block structure... more precisely, an op's block
// is never later than the block of any branch it precedes.
func TestQuickBlocksMonotone(t *testing.T) {
	prop := func(q testutil.QuickSB) bool {
		sb := q.SB
		for v := 0; v < sb.G.NumOps(); v++ {
			for bi, b := range sb.Branches {
				if v == b {
					continue
				}
				if sb.G.PredClosure(b).Has(v) && sb.Block[v] > bi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickExpandOccupancyEquivalence: the expansion preserves the
// dependence-only early times of the primary nodes and only ever adds
// resource pressure.
func TestQuickExpandOccupancyEquivalence(t *testing.T) {
	prop := func(q testutil.QuickSB, qm testutil.QuickMachine) bool {
		sb, m := q.SB, qm.M
		exp, origOf := model.ExpandOccupancy(sb, m)
		if origOf == nil {
			return exp == sb
		}
		if err := exp.Validate(); err != nil {
			t.Logf("expanded invalid: %v", err)
			return false
		}
		primary := make([]int, sb.G.NumOps())
		for i := range primary {
			primary[i] = -1
		}
		for expID, orig := range origOf {
			if primary[orig] < 0 {
				primary[orig] = expID
			}
		}
		origEarly := sb.G.EarlyDC()
		expEarly := exp.G.EarlyDC()
		for v := 0; v < sb.G.NumOps(); v++ {
			if expEarly[primary[v]] != origEarly[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBitsetSemantics compares the bitset against a reference map
// under random operation sequences.
func TestQuickBitsetSemantics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		bs := model.NewBitset(n)
		ref := map[int]bool{}
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				bs.Set(i)
				ref[i] = true
			case 1:
				bs.Clear(i)
				delete(ref, i)
			case 2:
				if bs.Has(i) != ref[i] {
					return false
				}
			}
		}
		if bs.Count() != len(ref) {
			return false
		}
		var got []int
		bs.ForEach(func(i int) { got = append(got, i) })
		if len(got) != len(ref) {
			return false
		}
		for _, i := range got {
			if !ref[i] {
				return false
			}
		}
		// Or with a clone is idempotent.
		before := bs.Count()
		bs.Or(bs.Clone())
		return bs.Count() == before
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// Compile-time check that the generators implement quick.Generator.
var (
	_ = reflect.TypeOf(testutil.QuickSB{})
	_ = reflect.TypeOf(testutil.QuickMachine{})
)
