package model

import (
	"math"
	"strings"
	"testing"
)

func TestClassLatencies(t *testing.T) {
	want := map[Class]int{Int: 1, Load: 2, Store: 1, FloatAdd: 1, FloatMul: 3, FloatDiv: 9, Branch: 1}
	for c, lat := range want {
		if got := c.Latency(); got != lat {
			t.Errorf("%v latency = %d, want %d", c, got, lat)
		}
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		back, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if back != c {
			t.Errorf("round trip of %v gave %v", c, back)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

func TestClassResources(t *testing.T) {
	cases := map[Class]Resource{
		Int: ResInt, Load: ResMem, Store: ResMem,
		FloatAdd: ResFloat, FloatMul: ResFloat, FloatDiv: ResFloat,
		Branch: ResBranch,
	}
	for c, r := range cases {
		if got := c.Resource(); got != r {
			t.Errorf("%v resource = %v, want %v", c, got, r)
		}
	}
}

func TestMachineConfigs(t *testing.T) {
	ms := Machines()
	if len(ms) != 6 {
		t.Fatalf("Machines() returned %d configs, want 6", len(ms))
	}
	widths := map[string]int{"GP1": 1, "GP2": 2, "GP4": 4, "FS4": 4, "FS6": 6, "FS8": 8}
	for _, m := range ms {
		if w := m.IssueWidth(); w != widths[m.Name] {
			t.Errorf("%s issue width = %d, want %d", m.Name, w, widths[m.Name])
		}
	}
	fs8, err := MachineByName("FS8")
	if err != nil {
		t.Fatal(err)
	}
	if fs8.Capacity(int(ResInt)) != 3 || fs8.Capacity(int(ResMem)) != 2 ||
		fs8.Capacity(int(ResFloat)) != 2 || fs8.Capacity(int(ResBranch)) != 1 {
		t.Errorf("FS8 mix wrong: %d/%d/%d/%d",
			fs8.Capacity(0), fs8.Capacity(1), fs8.Capacity(2), fs8.Capacity(3))
	}
	if _, err := MachineByName("GP3"); err == nil {
		t.Error("MachineByName accepted unknown config")
	} else {
		// The error is relayed verbatim by CLI usage errors and service 400
		// responses, so it must name every valid configuration.
		for _, name := range MachineNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("MachineByName error %q does not list %s", err, name)
			}
		}
	}
	if m, err := MachineByName(" fs6 "); err != nil || m.Name != "FS6" {
		t.Errorf("MachineByName(%q) = %v, %v; want case-insensitive FS6", " fs6 ", m, err)
	}
	gp2 := GP2()
	if gp2.Kinds() != 1 {
		t.Errorf("GP2 kinds = %d, want 1", gp2.Kinds())
	}
	for c := Class(0); c < numClasses; c++ {
		if gp2.KindOf(c) != 0 {
			t.Errorf("GP2 kind of %v = %d, want 0", c, gp2.KindOf(c))
		}
	}
}

// buildDiamond returns a small two-exit superblock used by several tests:
//
//	0 -> 1 -> br3(0.3) ; 2 -> br4 ; 0 -> 2
func buildDiamond(t *testing.T) *Superblock {
	t.Helper()
	b := NewBuilder("diamond")
	o0 := b.Int()
	o1 := b.Int(o0)
	b.Branch(0.3, o1)
	o2 := b.Int(o0) // second block
	b.Branch(0, o2)
	sb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

func TestBuilderBasics(t *testing.T) {
	sb := buildDiamond(t)
	if sb.G.NumOps() != 5 {
		t.Fatalf("got %d ops, want 5", sb.G.NumOps())
	}
	if got := sb.NumBranches(); got != 2 {
		t.Fatalf("got %d branches, want 2", got)
	}
	if math.Abs(sb.Prob[0]-0.3) > 1e-12 || math.Abs(sb.Prob[1]-0.7) > 1e-12 {
		t.Errorf("probabilities = %v, want [0.3 0.7]", sb.Prob)
	}
	// Control edge between the branches must exist.
	if !sb.G.PredClosure(sb.Branches[1]).Has(sb.Branches[0]) {
		t.Error("branch 0 does not precede branch 1")
	}
	if i, ok := sb.BranchIndex(sb.Branches[1]); !ok || i != 1 {
		t.Errorf("BranchIndex = %d,%v", i, ok)
	}
	if _, ok := sb.BranchIndex(0); ok {
		t.Error("op 0 reported as a branch")
	}
}

func TestBuilderBlocks(t *testing.T) {
	sb := buildDiamond(t)
	// Ops 0,1 precede branch 0 -> block 0; op 3 (second Int) only precedes
	// branch 1. Op IDs: 0,1, br=2, 3, br=4.
	wantBlocks := []int{0, 0, 0, 1, 1}
	for v, want := range wantBlocks {
		if sb.Block[v] != want {
			t.Errorf("block[%d] = %d, want %d", v, sb.Block[v], want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("empty")
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted a superblock with no branches")
	}

	b2 := NewBuilder("overprob")
	o := b2.Int()
	b2.Branch(0.8, o)
	b2.Branch(0.9)
	b2.Branch(0)
	if _, err := b2.Build(); err == nil {
		t.Error("Build accepted side probabilities summing over 1")
	}

	b3 := NewBuilder("badep")
	o3 := b3.Int()
	b3.Dep(o3, 99)
	b3.Branch(0, o3)
	if _, err := b3.Build(); err == nil {
		t.Error("Build accepted an out-of-range dependence")
	}

	b4 := NewBuilder("selfdep")
	o4 := b4.Int()
	b4.Dep(o4, o4)
	b4.Branch(0)
	if _, err := b4.Build(); err == nil {
		t.Error("Build accepted a self dependence")
	}
}

func TestEarlyDCAndHeights(t *testing.T) {
	b := NewBuilder("chain")
	o0 := b.AddOp(Load) // latency 2
	o1 := b.Int(o0)
	o2 := b.Int(o1)
	b.Branch(0, o2)
	sb := b.MustBuild()

	early := sb.G.EarlyDC()
	want := []int{0, 2, 3, 4}
	for v, w := range want {
		if early[v] != w {
			t.Errorf("EarlyDC[%d] = %d, want %d", v, early[v], w)
		}
	}
	h := sb.G.Heights()
	wantH := []int{4, 2, 1, 0}
	for v, w := range wantH {
		if h[v] != w {
			t.Errorf("height[%d] = %d, want %d", v, h[v], w)
		}
	}
	if cp := sb.G.CriticalPath(); cp != 5 {
		t.Errorf("CriticalPath = %d, want 5 (branch completes at 4+1)", cp)
	}
}

func TestLongestToTarget(t *testing.T) {
	sb := buildDiamond(t)
	br1 := sb.Branches[1]
	dist := sb.G.LongestToTarget(br1)
	// 0 -> 3 -> br = 2; also 0 -> 1 -> br -> br = 3.
	if dist[0] != 3 {
		t.Errorf("dist[0] = %d, want 3", dist[0])
	}
	if dist[3] != 1 {
		t.Errorf("dist[3] = %d, want 1", dist[3])
	}
	if dist[br1] != 0 {
		t.Errorf("dist[target] = %d, want 0", dist[br1])
	}
}

func TestPredClosure(t *testing.T) {
	sb := buildDiamond(t)
	cl := sb.G.PredClosure(sb.Branches[1])
	for _, v := range []int{0, 1, 3, sb.Branches[0]} {
		if !cl.Has(v) {
			t.Errorf("closure of last branch missing op %d", v)
		}
	}
	if cl.Has(sb.Branches[1]) {
		t.Error("closure contains the target itself")
	}
}

func TestUniformWeights(t *testing.T) {
	sb := buildDiamond(t)
	u := sb.UniformWeights()
	if math.Abs(u.Prob[1]/u.Prob[0]-1000) > 1e-9 {
		t.Errorf("uniform weights ratio = %v, want 1000", u.Prob[1]/u.Prob[0])
	}
	sum := 0.0
	for _, p := range u.Prob {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("uniform weights sum = %v", sum)
	}
	// Original must be untouched.
	if sb.Prob[0] != 0.3 {
		t.Error("UniformWeights mutated the original")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	if !b.Has(64) || b.Has(63) {
		t.Error("Has wrong")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	c := b.Clone()
	c.Clear(64)
	if !b.Has(64) || c.Has(64) {
		t.Error("Clone is not independent")
	}
	other := NewBitset(130)
	other.Set(5)
	b.Or(other)
	if !b.Has(5) {
		t.Error("Or failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Reset failed")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	sb := buildDiamond(t)
	if err := sb.Validate(); err != nil {
		t.Fatalf("valid superblock rejected: %v", err)
	}
	bad := *sb
	bad.Prob = []float64{0.5, 0.2}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted probabilities not summing to 1")
	}
	bad2 := *sb
	bad2.Freq = math.NaN()
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted NaN frequency")
	}
}
