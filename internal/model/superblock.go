package model

import (
	"fmt"
	"math"
)

// Superblock is a dependence graph together with its ordered exit branches,
// their exit probabilities, and the superblock's dynamic execution
// frequency. Branches are totally ordered by control-flow edges (branch i
// precedes branch i+1 with latency BranchLatency); the Builder inserts these
// edges automatically.
type Superblock struct {
	// Name identifies the superblock (e.g. "gcc/sb0042").
	Name string

	// G is the dependence graph. The last branch in Branches is the final
	// exit of the superblock.
	G *Graph

	// Branches holds the op IDs of the exit branches in program order.
	Branches []int

	// Prob[i] is the probability that execution exits through Branches[i].
	// The probabilities are non-negative and sum to 1: the final exit
	// absorbs the fall-through probability.
	Prob []float64

	// Freq is the superblock's dynamic execution frequency (number of times
	// the superblock is entered during a profiled run). Used to weight
	// per-superblock costs into dynamic cycle counts.
	Freq float64

	// Block[v] is the index of the basic block that operation v belongs to
	// (block i ends at Branches[i]). Derived from predecessor relations if
	// the source of the superblock does not record it.
	Block []int

	branchIndex map[int]int // op ID -> exit index
}

// NumBranches returns the number of exits.
func (sb *Superblock) NumBranches() int { return len(sb.Branches) }

// BranchIndex returns the exit index of the branch with the given op ID and
// whether the op is a branch.
func (sb *Superblock) BranchIndex(op int) (int, bool) {
	i, ok := sb.branchIndex[op]
	return i, ok
}

// Validate checks every superblock invariant:
//
//   - the graph is a valid DAG;
//   - at least one branch exists, every Branches entry is a Branch op, and
//     no other op is a Branch;
//   - consecutive branches are ordered by a control edge;
//   - probabilities are non-negative and sum to 1 (within 1e-6);
//   - Block is a valid monotone block assignment.
func (sb *Superblock) Validate() error {
	if sb.G == nil {
		return fmt.Errorf("model: superblock %q has no graph", sb.Name)
	}
	if err := sb.G.validate(); err != nil {
		return fmt.Errorf("superblock %q: %w", sb.Name, err)
	}
	if len(sb.Branches) == 0 {
		return fmt.Errorf("model: superblock %q has no exits", sb.Name)
	}
	if len(sb.Prob) != len(sb.Branches) {
		return fmt.Errorf("model: superblock %q has %d probabilities for %d branches", sb.Name, len(sb.Prob), len(sb.Branches))
	}
	isBranch := make(map[int]bool, len(sb.Branches))
	for i, b := range sb.Branches {
		if b < 0 || b >= sb.G.NumOps() {
			return fmt.Errorf("model: superblock %q branch %d out of range", sb.Name, b)
		}
		if !sb.G.Op(b).IsBranch() {
			return fmt.Errorf("model: superblock %q exit %d (op %d) is not a branch op", sb.Name, i, b)
		}
		if isBranch[b] {
			return fmt.Errorf("model: superblock %q lists op %d as an exit twice", sb.Name, b)
		}
		isBranch[b] = true
	}
	for v := 0; v < sb.G.NumOps(); v++ {
		if sb.G.Op(v).IsBranch() && !isBranch[v] {
			return fmt.Errorf("model: superblock %q op %d is a branch but not an exit", sb.Name, v)
		}
	}
	// Branch ordering: each branch must be a transitive predecessor of the
	// next (the Builder guarantees a direct control edge).
	for i := 0; i+1 < len(sb.Branches); i++ {
		if !sb.G.PredClosure(sb.Branches[i+1]).Has(sb.Branches[i]) {
			return fmt.Errorf("model: superblock %q branch %d does not precede branch %d", sb.Name, i, i+1)
		}
	}
	sum := 0.0
	for i, p := range sb.Prob {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("model: superblock %q exit %d has invalid probability %v", sb.Name, i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("model: superblock %q exit probabilities sum to %v, want 1", sb.Name, sum)
	}
	if sb.Freq < 0 || math.IsNaN(sb.Freq) {
		return fmt.Errorf("model: superblock %q has invalid frequency %v", sb.Name, sb.Freq)
	}
	if len(sb.Block) != sb.G.NumOps() {
		return fmt.Errorf("model: superblock %q block assignment has %d entries for %d ops", sb.Name, len(sb.Block), sb.G.NumOps())
	}
	for v, blk := range sb.Block {
		if blk < 0 || blk >= len(sb.Branches) {
			return fmt.Errorf("model: superblock %q op %d assigned to invalid block %d", sb.Name, v, blk)
		}
	}
	return nil
}

// finish derives the branch index map and, if absent, the block assignment.
func (sb *Superblock) finish() {
	sb.branchIndex = make(map[int]int, len(sb.Branches))
	for i, b := range sb.Branches {
		sb.branchIndex[b] = i
	}
	if sb.Block == nil {
		sb.Block = DeriveBlocks(sb.G, sb.Branches)
	}
}

// DeriveBlocks assigns each operation the index of the first branch it
// transitively precedes (its own index for branches); operations preceding
// no branch are assigned to the last block. This is the block structure the
// Successive Retirement heuristic retires.
func DeriveBlocks(g *Graph, branches []int) []int {
	n := g.NumOps()
	block := make([]int, n)
	last := len(branches) - 1
	for v := range block {
		block[v] = last
	}
	// Later branches first so earlier branches overwrite with smaller index.
	for i := len(branches) - 1; i >= 0; i-- {
		b := branches[i]
		block[b] = i
		g.PredClosure(b).ForEach(func(v int) { block[v] = i })
	}
	// Branches keep their own index even though each precedes its
	// successors' closures (handled by the loop order above: branch b was
	// overwritten by earlier closures only if it precedes an earlier
	// branch, which the ordering invariant forbids).
	for i, b := range branches {
		block[b] = i
	}
	return block
}

// WeightedProbPrefix returns prefix sums of exit probabilities:
// out[i] = sum of Prob[0..i].
func (sb *Superblock) WeightedProbPrefix() []float64 {
	out := make([]float64, len(sb.Prob))
	sum := 0.0
	for i, p := range sb.Prob {
		sum += p
		out[i] = sum
	}
	return out
}

// UniformWeights returns a copy of the superblock with the "no profile"
// weighting used by Table 5 of the paper: the last branch has weight 1000
// and all other branches have unit weight, normalized to sum to 1.
func (sb *Superblock) UniformWeights() *Superblock {
	clone := *sb
	probs := make([]float64, len(sb.Prob))
	total := float64(len(probs)-1) + 1000
	for i := range probs {
		probs[i] = 1 / total
	}
	probs[len(probs)-1] = 1000 / total
	clone.Prob = probs
	return &clone
}

// WithProbs returns a shallow copy of the superblock using the given exit
// probabilities (which must have one entry per branch and sum to 1).
func (sb *Superblock) WithProbs(probs []float64) *Superblock {
	clone := *sb
	clone.Prob = probs
	return &clone
}
