package model

import (
	"fmt"
	"strings"
)

// Machine describes a fully pipelined VLIW machine as a set of per-cycle
// issue capacities. Two families exist, mirroring Section 6 of the paper:
//
//   - General-purpose (GP) machines have Width identical units; every
//     operation can issue on any unit, so the machine has a single resource
//     kind with capacity Width.
//   - Fully specialized (FS) machines have one unit kind per Resource
//     (integer, memory, float, branch); each operation can only issue on a
//     unit of its class's resource.
//
// All units are fully pipelined: an operation occupies a unit only in its
// issue cycle.
type Machine struct {
	// Name is the configuration name ("GP2", "FS6", ...).
	Name string

	// kinds is the number of distinct resource kinds (1 for GP, 4 for FS).
	kinds int
	// cap[k] is the per-cycle issue capacity of resource kind k.
	cap []int
	// classKind maps an operation Class to its resource kind index.
	classKind [numClasses]int
	// occupancy[c] is the number of consecutive cycles an operation of
	// class c holds its functional unit (1 = fully pipelined; 0 means 1).
	occupancy [numClasses]int
}

// NewGP returns a general-purpose machine with width identical units.
func NewGP(width int) *Machine {
	if width < 1 {
		panic(fmt.Sprintf("model: invalid GP width %d", width))
	}
	m := &Machine{
		Name:  fmt.Sprintf("GP%d", width),
		kinds: 1,
		cap:   []int{width},
	}
	// classKind is all zeros: every class shares the single kind.
	return m
}

// NewFS returns a fully specialized machine with the given unit mix
// (#integer, #memory, #float, #branch units).
func NewFS(intUnits, memUnits, floatUnits, branchUnits int) *Machine {
	if intUnits < 1 || memUnits < 1 || floatUnits < 1 || branchUnits < 1 {
		panic(fmt.Sprintf("model: invalid FS mix (%d,%d,%d,%d)", intUnits, memUnits, floatUnits, branchUnits))
	}
	m := &Machine{
		Name:  fmt.Sprintf("FS%d", intUnits+memUnits+floatUnits+branchUnits),
		kinds: NumResources,
		cap:   []int{intUnits, memUnits, floatUnits, branchUnits},
	}
	for c := Class(0); c < numClasses; c++ {
		m.classKind[c] = int(c.Resource())
	}
	return m
}

// GP1, GP2, GP4, FS4, FS6, FS8 construct the six machine configurations
// evaluated in the paper. FS4 is (1,1,1,1); FS6 is (2,2,1,1); FS8 is
// (3,2,2,1).
func GP1() *Machine { return NewGP(1) }

// GP2 returns the two-wide general-purpose configuration.
func GP2() *Machine { return NewGP(2) }

// GP4 returns the four-wide general-purpose configuration.
func GP4() *Machine { return NewGP(4) }

// FS4 returns the (1 int, 1 mem, 1 float, 1 branch) specialized configuration.
func FS4() *Machine { return NewFS(1, 1, 1, 1) }

// FS6 returns the (2 int, 2 mem, 1 float, 1 branch) specialized configuration.
func FS6() *Machine { return NewFS(2, 2, 1, 1) }

// FS8 returns the (3 int, 2 mem, 2 float, 1 branch) specialized configuration.
func FS8() *Machine { return NewFS(3, 2, 2, 1) }

// Machines returns the six configurations evaluated in the paper, in the
// order used by its tables: GP1, GP2, GP4, FS4, FS6, FS8.
func Machines() []*Machine {
	return []*Machine{GP1(), GP2(), GP4(), FS4(), FS6(), FS8()}
}

// MachineByName returns the named standard configuration,
// case-insensitively. The error for an unknown name lists every valid
// name, so surfaces that relay it verbatim (CLI usage errors, the
// service's 400 responses) are self-describing.
func MachineByName(name string) (*Machine, error) {
	want := strings.TrimSpace(name)
	for _, m := range Machines() {
		if strings.EqualFold(m.Name, want) {
			return m, nil
		}
	}
	return nil, fmt.Errorf("model: unknown machine %q (available: %s)", name, strings.Join(MachineNames(), ", "))
}

// MachineNames returns the standard configuration names in table order.
func MachineNames() []string {
	ms := Machines()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// WithOccupancy returns a copy of the machine on which operations of class
// c hold their functional unit for occ consecutive cycles (a non-fully-
// pipelined unit). The paper supports such machines by the Rim & Jain
// modeling (Sections 4.1 and 5): for bound computations the operation is
// replaced by a chain of occ unit-occupancy pseudo-operations. occ must be
// between 1 and the class latency (a unit is held at most until its result
// is ready), and branches must stay fully pipelined.
func (m *Machine) WithOccupancy(c Class, occ int) *Machine {
	if occ < 1 || occ > c.Latency() {
		panic(fmt.Sprintf("model: occupancy %d out of range for %v (latency %d)", occ, c, c.Latency()))
	}
	if c == Branch && occ != 1 {
		panic("model: branches must be fully pipelined")
	}
	clone := *m
	clone.cap = append([]int(nil), m.cap...)
	clone.occupancy[c] = occ
	if occ > 1 {
		clone.Name = fmt.Sprintf("%s+%s*%d", m.Name, c, occ)
	}
	return &clone
}

// Occupancy returns the number of cycles an operation of class c holds its
// unit (1 for fully pipelined units).
func (m *Machine) Occupancy(c Class) int {
	if o := m.occupancy[c]; o > 0 {
		return o
	}
	return 1
}

// FullyPipelined reports whether every unit is fully pipelined.
func (m *Machine) FullyPipelined() bool {
	for c := Class(0); c < numClasses; c++ {
		if m.Occupancy(c) != 1 {
			return false
		}
	}
	return true
}

// Kinds returns the number of distinct resource kinds on the machine.
func (m *Machine) Kinds() int { return m.kinds }

// Capacity returns the per-cycle issue capacity of resource kind k.
func (m *Machine) Capacity(k int) int { return m.cap[k] }

// KindOf returns the resource kind index the class issues on.
func (m *Machine) KindOf(c Class) int { return m.classKind[c] }

// IssueWidth returns the total number of functional units (the maximum
// number of operations issued per cycle).
func (m *Machine) IssueWidth() int {
	w := 0
	for _, c := range m.cap {
		w += c
	}
	return w
}

// KindName returns a human-readable name for resource kind k.
func (m *Machine) KindName(k int) string {
	if m.kinds == 1 {
		return "gp"
	}
	return Resource(k).String()
}

// String returns the configuration name.
func (m *Machine) String() string { return m.Name }
