// Package model defines the data model shared by every component of the
// balance library: operations, dependence graphs, superblocks, and VLIW
// machine descriptions.
//
// The model follows the conventions of Eichenberger & Meleis (MICRO 1999):
// a superblock is a single-entry, multiple-exit dependence DAG whose exits
// are branch operations ordered by control-flow edges; every operation is
// fully pipelined and occupies one functional unit of its resource class in
// its issue cycle.
package model

import "fmt"

// Class identifies the kind of an operation. The class determines the
// operation's default latency and, together with a Machine, the functional
// unit (Resource) the operation issues on.
type Class uint8

const (
	// Int is a single-cycle integer ALU operation.
	Int Class = iota
	// Load is a memory read with a two-cycle latency.
	Load
	// Store is a memory write with a single-cycle latency.
	Store
	// FloatAdd is a single-cycle floating-point add/sub/compare.
	FloatAdd
	// FloatMul is a three-cycle floating-point multiply.
	FloatMul
	// FloatDiv is a nine-cycle floating-point divide.
	FloatDiv
	// Branch is a conditional or unconditional exit branch with unit latency.
	Branch

	numClasses
)

// NumClasses is the number of distinct operation classes.
const NumClasses = int(numClasses)

// BranchLatency is the latency of every branch operation (the paper's l_br).
const BranchLatency = 1

var classNames = [numClasses]string{"int", "load", "store", "fadd", "fmul", "fdiv", "branch"}

// String returns the lower-case mnemonic for the class ("int", "load", ...).
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass converts a mnemonic produced by Class.String back to a Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown operation class %q", s)
}

// Latency returns the default result latency of the class, in cycles.
// All operations are unit latency except loads (2), floating multiplies (3)
// and floating divides (9), matching Section 6 of the paper.
func (c Class) Latency() int {
	switch c {
	case Load:
		return 2
	case FloatMul:
		return 3
	case FloatDiv:
		return 9
	default:
		return 1
	}
}

// Resource identifies a functional-unit type on a fully specialized (FS)
// machine. General-purpose (GP) machines collapse all resources into one.
type Resource uint8

const (
	// ResInt is the integer ALU unit class.
	ResInt Resource = iota
	// ResMem is the memory (load/store) unit class.
	ResMem
	// ResFloat is the floating-point unit class.
	ResFloat
	// ResBranch is the branch unit class.
	ResBranch

	numResources
)

// NumResources is the number of specialized functional-unit types.
const NumResources = int(numResources)

var resourceNames = [numResources]string{"int", "mem", "float", "branch"}

// String returns the lower-case name of the resource type.
func (r Resource) String() string {
	if int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("resource(%d)", uint8(r))
}

// Resource returns the specialized functional-unit type the class issues on.
func (c Class) Resource() Resource {
	switch c {
	case Int:
		return ResInt
	case Load, Store:
		return ResMem
	case FloatAdd, FloatMul, FloatDiv:
		return ResFloat
	case Branch:
		return ResBranch
	default:
		return ResInt
	}
}

// Op is a single operation in a dependence graph. Operations are identified
// by their index in the owning Graph; IDs are dense and assigned in program
// order by the Builder.
type Op struct {
	// ID is the operation's index within its Graph.
	ID int
	// Class is the operation kind.
	Class Class
	// Latency is the operation's result latency in cycles. The Builder
	// initializes it to Class.Latency but callers may override it (the
	// paper's examples use custom latencies on some edges).
	Latency int
}

// IsBranch reports whether the operation is a branch.
func (o Op) IsBranch() bool { return o.Class == Branch }
