package model

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Digest returns a 64-bit FNV-1a hash of the superblock's scheduling
// structure: operation classes, dependence edges with latencies, the exit
// branch order, and the exit probabilities. The name and the dynamic
// execution frequency are deliberately excluded: two superblocks with equal
// digests admit exactly the same schedules, costs, and lower bounds on any
// machine, so digest-keyed caches may share those results between them.
func (sb *Superblock) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	n := sb.G.NumOps()
	u64(uint64(n))
	for v := 0; v < n; v++ {
		u64(uint64(sb.G.Op(v).Class))
		succs := sb.G.Succs(v)
		u64(uint64(len(succs)))
		for _, e := range succs {
			u64(uint64(e.To))
			u64(uint64(int64(e.Lat)))
		}
	}
	u64(uint64(len(sb.Branches)))
	for i, b := range sb.Branches {
		u64(uint64(b))
		u64(math.Float64bits(sb.Prob[i]))
	}
	return h.Sum64()
}
