package model

import (
	"fmt"
	"math"
)

// Builder constructs a Superblock incrementally. Operations must be added
// in program order; dependence edges may connect any earlier operation to a
// later one. The Builder chains consecutive branches with control edges of
// latency BranchLatency, as required by the superblock ordering invariant.
//
// The zero Builder is not usable; create one with NewBuilder.
type Builder struct {
	name     string
	ops      []Op
	succ     [][]Edge
	pred     [][]Edge
	branches []int
	probs    []float64
	blocks   []int
	freq     float64
	err      error
}

// NewBuilder returns a Builder for a superblock with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, freq: 1}
}

// SetFreq sets the superblock's dynamic execution frequency (default 1).
func (b *Builder) SetFreq(f float64) *Builder {
	b.freq = f
	return b
}

// AddOp appends an operation of the given class with its default latency
// and returns its ID.
func (b *Builder) AddOp(c Class) int {
	return b.AddOpLatency(c, c.Latency())
}

// AddOpLatency appends an operation with an explicit latency and returns
// its ID.
func (b *Builder) AddOpLatency(c Class, latency int) int {
	id := len(b.ops)
	b.ops = append(b.ops, Op{ID: id, Class: c, Latency: latency})
	b.succ = append(b.succ, nil)
	b.pred = append(b.pred, nil)
	b.blocks = append(b.blocks, len(b.branches))
	return id
}

// Int appends an integer operation depending on the given predecessors
// (with the predecessors' latencies) and returns its ID.
func (b *Builder) Int(preds ...int) int { return b.opWithDeps(Int, preds) }

// Load appends a load operation depending on the given predecessors and
// returns its ID.
func (b *Builder) Load(preds ...int) int { return b.opWithDeps(Load, preds) }

// Store appends a store operation depending on the given predecessors and
// returns its ID.
func (b *Builder) Store(preds ...int) int { return b.opWithDeps(Store, preds) }

// Op appends an operation of class c depending on the given predecessors
// and returns its ID.
func (b *Builder) Op(c Class, preds ...int) int { return b.opWithDeps(c, preds) }

func (b *Builder) opWithDeps(c Class, preds []int) int {
	id := b.AddOp(c)
	for _, p := range preds {
		b.Dep(p, id)
	}
	return id
}

// Dep adds a dependence edge from -> to with the producing operation's
// latency.
func (b *Builder) Dep(from, to int) *Builder {
	if from < 0 || from >= len(b.ops) {
		b.fail(fmt.Errorf("model: dep source %d out of range", from))
		return b
	}
	return b.DepLatency(from, to, b.ops[from].Latency)
}

// DepLatency adds a dependence edge with an explicit latency.
func (b *Builder) DepLatency(from, to, lat int) *Builder {
	if from < 0 || from >= len(b.ops) || to < 0 || to >= len(b.ops) {
		b.fail(fmt.Errorf("model: dep %d->%d out of range", from, to))
		return b
	}
	if from == to {
		b.fail(fmt.Errorf("model: self dependence on op %d", from))
		return b
	}
	b.succ[from] = append(b.succ[from], Edge{To: to, Lat: lat})
	b.pred[to] = append(b.pred[to], Edge{To: from, Lat: lat})
	return b
}

// Branch appends an exit branch with the given taken probability and data
// dependences on preds, chains it after the previous branch with a control
// edge, and returns its ID. The probability of the final exit is implied:
// pass the fall-through remainder explicitly or use Build's normalization.
func (b *Builder) Branch(prob float64, preds ...int) int {
	id := b.AddOp(Branch)
	b.blocks[id] = len(b.branches) // branch belongs to the block it ends
	for _, p := range preds {
		b.Dep(p, id)
	}
	if n := len(b.branches); n > 0 {
		b.DepLatency(b.branches[n-1], id, BranchLatency)
	}
	b.branches = append(b.branches, id)
	b.probs = append(b.probs, prob)
	return id
}

// NumOps returns the number of operations added so far.
func (b *Builder) NumOps() int { return len(b.ops) }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes and validates the superblock. If the recorded exit
// probabilities do not sum to 1, the final exit's probability is adjusted to
// absorb the remainder (the usual fall-through convention); Build fails if
// that would make it negative.
func (b *Builder) Build() (*Superblock, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.branches) == 0 {
		return nil, fmt.Errorf("model: superblock %q has no exit branch", b.name)
	}
	probs := append([]float64(nil), b.probs...)
	sum := 0.0
	for _, p := range probs[:len(probs)-1] {
		sum += p
	}
	if rest := 1 - sum; math.Abs(rest-probs[len(probs)-1]) > 1e-9 {
		if rest < -1e-9 {
			return nil, fmt.Errorf("model: superblock %q side exit probabilities sum to %v > 1", b.name, sum)
		}
		if rest < 0 {
			rest = 0
		}
		probs[len(probs)-1] = rest
	}
	blocks := append([]int(nil), b.blocks...)
	for v, blk := range blocks {
		if blk >= len(b.branches) {
			blocks[v] = len(b.branches) - 1
		}
	}
	g := &Graph{ops: b.ops, succ: mergeParallel(b.succ), pred: mergeParallel(b.pred)}
	g.sortEdges()
	if !g.computeTopo() {
		return nil, fmt.Errorf("model: superblock %q has a dependence cycle", b.name)
	}
	sb := &Superblock{
		Name:     b.name,
		G:        g,
		Branches: append([]int(nil), b.branches...),
		Prob:     probs,
		Freq:     b.freq,
		Block:    blocks,
	}
	sb.finish()
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	return sb, nil
}

// mergeParallel collapses parallel edges between the same endpoints into a
// single edge carrying the maximum latency (the binding constraint).
func mergeParallel(adj [][]Edge) [][]Edge {
	for v, es := range adj {
		if len(es) < 2 {
			continue
		}
		best := make(map[int]int, len(es))
		for _, e := range es {
			if lat, ok := best[e.To]; !ok || e.Lat > lat {
				best[e.To] = e.Lat
			}
		}
		if len(best) == len(es) {
			continue
		}
		merged := es[:0]
		for to, lat := range best {
			merged = append(merged, Edge{To: to, Lat: lat})
		}
		adj[v] = merged
	}
	return adj
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Superblock {
	sb, err := b.Build()
	if err != nil {
		panic(err)
	}
	return sb
}
