package sbfile

import (
	"bytes"
	"strings"
	"testing"

	"balance/internal/figures"
	"balance/internal/model"
)

func TestWriteDOT(t *testing.T) {
	b := model.NewBuilder("dot")
	o0 := b.AddOpLatency(model.Int, 4)
	l := b.Load()
	b.Branch(0.3, o0)
	b.Branch(0, l)
	sb := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteDOT(&buf, sb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"dot\"",
		"p=0.300",
		"doubleoctagon",
		"lat=4",
		"n1 -> n3",      // load -> final branch
		"[label=\"2\"]", // load edge latency
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Every op gets a node line.
	for v := 0; v < sb.G.NumOps(); v++ {
		if !strings.Contains(out, "n"+string(rune('0'+v))+" [") {
			t.Errorf("node n%d missing", v)
		}
	}
}

func TestWriteDOTFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, figures.Figure1(0.25)); err != nil {
		t.Fatal(err)
	}
	// 17 nodes, 2 branch shapes.
	out := buf.String()
	if got := strings.Count(out, "doubleoctagon"); got != 2 {
		t.Errorf("%d branch nodes, want 2", got)
	}
	if got := strings.Count(out, "->"); got != figures.Figure1(0.25).G.NumEdges() {
		t.Errorf("%d edges rendered, want %d", got, figures.Figure1(0.25).G.NumEdges())
	}
}
