package sbfile

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"balance/internal/figures"
	"balance/internal/gen"
	"balance/internal/model"
	"balance/internal/testutil"
)

func roundTrip(t *testing.T, sb *model.Superblock) *model.Superblock {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v\nfile:\n%s", err, buf.String())
	}
	if len(back) != 1 {
		t.Fatalf("round trip returned %d superblocks", len(back))
	}
	return back[0]
}

func assertEqual(t *testing.T, a, b *model.Superblock) {
	t.Helper()
	if a.Name != b.Name || a.G.NumOps() != b.G.NumOps() || a.NumBranches() != b.NumBranches() {
		t.Fatalf("shape mismatch: %s(%d ops) vs %s(%d ops)", a.Name, a.G.NumOps(), b.Name, b.G.NumOps())
	}
	if a.Freq != b.Freq {
		t.Errorf("freq %v vs %v", a.Freq, b.Freq)
	}
	for v := 0; v < a.G.NumOps(); v++ {
		oa, ob := a.G.Op(v), b.G.Op(v)
		if oa.Class != ob.Class || oa.Latency != ob.Latency {
			t.Fatalf("op %d differs: %v/%d vs %v/%d", v, oa.Class, oa.Latency, ob.Class, ob.Latency)
		}
		ea, eb := a.G.Succs(v), b.G.Succs(v)
		if len(ea) != len(eb) {
			t.Fatalf("op %d edge count differs: %d vs %d", v, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("op %d edge %d differs: %v vs %v", v, i, ea[i], eb[i])
			}
		}
	}
	for i := range a.Prob {
		if diff := a.Prob[i] - b.Prob[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("prob %d differs: %v vs %v", i, a.Prob[i], b.Prob[i])
		}
	}
}

func TestRoundTripFigures(t *testing.T) {
	for _, sb := range []*model.Superblock{
		figures.Figure1(0.25), figures.Figure2(0.3), figures.Figure3(0.2),
		figures.Figure4(0.26), figures.Figure6(),
	} {
		assertEqual(t, sb, roundTrip(t, sb))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		sb := testutil.RandomSuperblock(rng, 40)
		assertEqual(t, sb, roundTrip(t, sb))
	}
}

func TestRoundTripGenerated(t *testing.T) {
	p, _ := gen.ProfileByName("compress")
	sbs := gen.Generate(p, 9, 0.3)
	var buf bytes.Buffer
	if err := Write(&buf, sbs...); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sbs) {
		t.Fatalf("got %d superblocks back, want %d", len(back), len(sbs))
	}
	for i := range sbs {
		assertEqual(t, sbs[i], back[i])
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated":  "superblock x\nop 0 int\nbranch 1 0\n",
		"nested":        "superblock x\nsuperblock y\n",
		"sparse ids":    "superblock x\nop 2 int\nend\n",
		"bad class":     "superblock x\nop 0 banana\nend\n",
		"branch as op":  "superblock x\nop 0 branch\nend\n",
		"bad dep":       "superblock x\nop 0 int\nbranch 1 0\ndep 0 zero\nend\n",
		"end w/o start": "end\n",
		"unknown":       "frobnicate 1 2\n",
		"no branch":     "superblock x\nop 0 int\nend\n",
		"freq outside":  "freq 2\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func TestReadCommentsAndBlank(t *testing.T) {
	text := `
# a comment
superblock demo

# ops
op 0 int
op 1 load 5
branch 2 0.4
branch 3 0
dep 0 2
dep 1 3
end
`
	sbs, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(sbs) != 1 || sbs[0].Name != "demo" {
		t.Fatalf("parse failed: %+v", sbs)
	}
	if sbs[0].G.Op(1).Latency != 5 {
		t.Errorf("latency override lost: %d", sbs[0].G.Op(1).Latency)
	}
	if sbs[0].Prob[0] != 0.4 {
		t.Errorf("prob = %v", sbs[0].Prob[0])
	}
}
