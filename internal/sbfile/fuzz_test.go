package sbfile

import (
	"bytes"
	"strings"
	"testing"

	"balance/internal/figures"
)

// FuzzRead exercises the .sb parser: it must never panic, and anything it
// accepts must be a valid superblock that round-trips.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, figures.Figure1(0.25), figures.Figure2(0.3)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("superblock x\nop 0 int\nbranch 1 0.5\nbranch 2 0\ndep 0 1\nend\n")
	f.Add("# comment\n\nsuperblock y\nfreq 2.5\nop 0 load 7\nbranch 1 0\nend\n")
	f.Add("superblock broken\nop 0 int\n")
	f.Add("dep 1 2\n")

	f.Fuzz(func(t *testing.T, input string) {
		sbs, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, sb := range sbs {
			if verr := sb.Validate(); verr != nil {
				t.Fatalf("parser accepted an invalid superblock: %v", verr)
			}
			var buf bytes.Buffer
			if werr := Write(&buf, sb); werr != nil {
				t.Fatalf("cannot re-encode accepted superblock: %v", werr)
			}
			back, rerr := Read(&buf)
			if rerr != nil {
				t.Fatalf("round trip failed: %v\n%s", rerr, buf.String())
			}
			if len(back) != 1 || back[0].G.NumOps() != sb.G.NumOps() {
				t.Fatal("round trip changed the superblock")
			}
		}
	})
}
