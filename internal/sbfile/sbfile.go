// Package sbfile implements a line-oriented text format for superblocks so
// the command-line tools can exchange dependence graphs. The format:
//
//	# comment
//	superblock <name>
//	freq <float>                  (optional, default 1)
//	op <id> <class> [<latency>]   (ids dense, in program order)
//	branch <id> <prob> [<latency>]
//	dep <from> <to> [<latency>]   (default: producer latency)
//	end
//
// Several superblocks may appear in one file. The control edges between
// consecutive branches are implicit (the reader inserts them; the writer
// omits them).
package sbfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"balance/internal/model"
)

// Write encodes the superblocks to w.
func Write(w io.Writer, sbs ...*model.Superblock) error {
	bw := bufio.NewWriter(w)
	for _, sb := range sbs {
		if err := writeOne(bw, sb); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeOne(w *bufio.Writer, sb *model.Superblock) error {
	fmt.Fprintf(w, "superblock %s\n", sb.Name)
	if sb.Freq != 1 {
		fmt.Fprintf(w, "freq %g\n", sb.Freq)
	}
	g := sb.G
	for v := 0; v < g.NumOps(); v++ {
		op := g.Op(v)
		if bi, ok := sb.BranchIndex(v); ok {
			fmt.Fprintf(w, "branch %d %g", v, sb.Prob[bi])
			if op.Latency != op.Class.Latency() {
				fmt.Fprintf(w, " %d", op.Latency)
			}
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprintf(w, "op %d %s", v, op.Class)
		if op.Latency != op.Class.Latency() {
			fmt.Fprintf(w, " %d", op.Latency)
		}
		fmt.Fprintln(w)
	}
	for v := 0; v < g.NumOps(); v++ {
		for _, e := range g.Succs(v) {
			// Skip the implicit control edge between consecutive branches.
			if isControlEdge(sb, v, e) {
				continue
			}
			if e.Lat != g.Op(v).Latency {
				fmt.Fprintf(w, "dep %d %d %d\n", v, e.To, e.Lat)
			} else {
				fmt.Fprintf(w, "dep %d %d\n", v, e.To)
			}
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

// isControlEdge reports whether the edge is the implicit branch-chain edge.
func isControlEdge(sb *model.Superblock, from int, e model.Edge) bool {
	bi, okFrom := sb.BranchIndex(from)
	bj, okTo := sb.BranchIndex(e.To)
	return okFrom && okTo && bj == bi+1 && e.Lat == model.BranchLatency
}

// Read parses every superblock in r.
func Read(r io.Reader) ([]*model.Superblock, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []*model.Superblock
	var b *model.Builder
	var freq float64 = 1
	nextID := 0
	line := 0
	type pendingDep struct{ from, to, lat int }
	var deps []pendingDep

	finish := func() error {
		if b == nil {
			return nil
		}
		for _, d := range deps {
			if d.lat < 0 {
				b.Dep(d.from, d.to)
			} else {
				b.DepLatency(d.from, d.to, d.lat)
			}
		}
		b.SetFreq(freq)
		sb, err := b.Build()
		if err != nil {
			return err
		}
		out = append(out, sb)
		b = nil
		deps = deps[:0]
		freq = 1
		nextID = 0
		return nil
	}

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("sbfile: line %d: %s", line, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "superblock":
			if b != nil {
				return nil, errf("nested superblock (missing end?)")
			}
			if len(fields) < 2 {
				return nil, errf("superblock needs a name")
			}
			b = model.NewBuilder(strings.Join(fields[1:], " "))
		case "freq":
			if b == nil || len(fields) != 2 {
				return nil, errf("misplaced or malformed freq")
			}
			f, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, errf("bad freq: %v", err)
			}
			freq = f
		case "op", "branch":
			if b == nil || len(fields) < 3 {
				return nil, errf("misplaced or malformed %s", fields[0])
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != nextID {
				return nil, errf("op ids must be dense and in order (got %q, want %d)", fields[1], nextID)
			}
			lat := -1
			if len(fields) >= 4 {
				lat, err = strconv.Atoi(fields[3])
				if err != nil || lat < 0 {
					return nil, errf("bad latency %q", fields[3])
				}
			}
			if fields[0] == "op" {
				c, err := model.ParseClass(fields[2])
				if err != nil {
					return nil, errf("%v", err)
				}
				if c == model.Branch {
					return nil, errf("use the branch directive for branches")
				}
				if lat < 0 {
					b.AddOp(c)
				} else {
					b.AddOpLatency(c, lat)
				}
			} else {
				prob, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return nil, errf("bad probability %q", fields[2])
				}
				id := b.Branch(prob)
				_ = id
				if lat >= 0 {
					return nil, errf("branch latency overrides are not supported")
				}
			}
			nextID++
		case "dep":
			if b == nil || len(fields) < 3 {
				return nil, errf("misplaced or malformed dep")
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, errf("bad dep endpoints")
			}
			lat := -1
			if len(fields) >= 4 {
				var err error
				lat, err = strconv.Atoi(fields[3])
				if err != nil || lat < 0 {
					return nil, errf("bad dep latency %q", fields[3])
				}
			}
			deps = append(deps, pendingDep{from, to, lat})
		case "end":
			if b == nil {
				return nil, errf("end without superblock")
			}
			if err := finish(); err != nil {
				return nil, fmt.Errorf("sbfile: line %d: %w", line, err)
			}
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sbfile: %w", err)
	}
	if b != nil {
		return nil, fmt.Errorf("sbfile: unterminated superblock (missing end)")
	}
	return out, nil
}
