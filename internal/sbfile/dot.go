package sbfile

import (
	"bufio"
	"fmt"
	"io"

	"balance/internal/model"
)

// WriteDOT renders the superblock's dependence graph in Graphviz DOT
// format: branches as doubled octagons annotated with their exit
// probabilities, operations labeled with their class (and latency when it
// differs from the class default), and dependence edges labeled with
// non-unit latencies.
func WriteDOT(w io.Writer, sb *model.Superblock) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", sb.Name)
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [shape=box, fontname=\"monospace\"];")
	g := sb.G
	for v := 0; v < g.NumOps(); v++ {
		op := g.Op(v)
		if bi, ok := sb.BranchIndex(v); ok {
			fmt.Fprintf(bw, "  n%d [shape=doubleoctagon, label=\"%d: branch\\np=%.3f\"];\n",
				v, v, sb.Prob[bi])
			continue
		}
		label := fmt.Sprintf("%d: %s", v, op.Class)
		if op.Latency != op.Class.Latency() {
			label += fmt.Sprintf("\\nlat=%d", op.Latency)
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\"];\n", v, label)
	}
	for v := 0; v < g.NumOps(); v++ {
		for _, e := range g.Succs(v) {
			if e.Lat != 1 {
				fmt.Fprintf(bw, "  n%d -> n%d [label=\"%d\"];\n", v, e.To, e.Lat)
			} else {
				fmt.Fprintf(bw, "  n%d -> n%d;\n", v, e.To)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
