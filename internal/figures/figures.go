// Package figures reconstructs the worked examples of Figures 1-4 of the
// paper. The published figures are only partially specified in the text, so
// each graph here is rebuilt from the quantitative facts the paper states
// about it (predecessor counts, dependence-chain lengths, resource bounds,
// and the cycles the discussed schedules achieve); the accompanying tests
// assert those facts against this implementation. All four examples target
// the two-issue general-purpose machine (GP2).
package figures

import "balance/internal/model"

// Figure1 is the running example of Sections 1-2: a two-block superblock
// whose side exit (op 3) has three independent integer predecessors and
// whose final exit (op 16) has 16 predecessors including a 7-cycle
// dependence chain. On GP2:
//
//   - EarlyDC[br16] = 7, but resources force br16 ≥ 8 — a one-cycle gap
//     "just large enough to schedule branch 3 early without delaying
//     branch 16";
//   - Critical Path scheduling issues br16 at 8 but delays br3 by 4 cycles
//     (to cycle 6);
//   - Successive Retirement achieves the optimum: br3 at 2 and br16 at 8.
//
// sideProb is the side exit's taken probability (the paper's examples leave
// it symbolic).
func Figure1(sideProb float64) *model.Superblock {
	b := model.NewBuilder("figure1")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	br3 := b.Branch(sideProb, o0, o1, o2) // op 3

	// Chain c1..c7 = ops 4..10.
	c1 := b.Int()
	c2 := b.Int(c1)
	c3 := b.Int(c2)
	c4 := b.Int(c3)
	c5 := b.Int(c4)
	c6 := b.Int(c5)
	c7 := b.Int(c6)
	// Fillers with enough height that Critical Path prefers them over the
	// first block: 11 -> c5, 12 -> c6, 13 -> c7.
	f11 := b.Int()
	b.Dep(f11, c5)
	f12 := b.Int()
	b.Dep(f12, c6)
	f13 := b.Int()
	b.Dep(f13, c7)
	// Short fillers feeding the final exit directly.
	f14 := b.Int()
	f15 := b.Int()
	br16 := b.Branch(0, c7, f14, f15) // op 16, absorbs remaining probability
	_ = br3
	_ = br16
	return b.MustBuild()
}

// Figure2 is Observation 1's example: help-based heuristics give ops 0-2
// top priority because they help both branches, but branch 6 specifically
// needs op 4 in cycle 0 (it starts a three-cycle chain 4 -> 5 -> br6, with
// a two-cycle latency on 4 -> 5). On GP2 the optimum issues br3 at 2 and
// br6 at 3; scheduling {0,1} first delays br6 to 4.
func Figure2(sideProb float64) *model.Superblock {
	b := model.NewBuilder("figure2")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	b.Branch(sideProb, o0, o1, o2) // op 3
	o4 := b.Int()
	o5 := b.AddOp(model.Int)
	b.DepLatency(o4, o5, 2)
	b.Branch(0, o5) // op 6
	return b.MustBuild()
}

// Figure3 is Observation 2's example: the dependence-only distance from op
// 4 to branch 9 is four cycles, but ops 6, 7 and 8 cannot share a cycle on
// GP2, so the true minimum separation is five — branch 9 needs op 4 in
// cycle 0 even though no dependence chain says so. EarlyRC[br9] = 5 and the
// optimum issues br3 at 2 and br9 at 5.
func Figure3(sideProb float64) *model.Superblock {
	b := model.NewBuilder("figure3")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	b.Branch(sideProb, o0, o1, o2) // op 3
	o4 := b.Int()
	o5 := b.AddOp(model.Int)
	b.DepLatency(o4, o5, 2)
	o6 := b.Int(o5)
	o7 := b.Int(o5)
	o8 := b.Int(o5)
	b.Branch(0, o6, o7, o8) // op 9
	return b.MustBuild()
}

// Figure4 is Observation 3's example: a variant of Figure 1 (ops 1 and 2
// now form a chain with op 0, and the fillers feed the head of the long
// chain) in which the two exits genuinely compete. On GP2:
//
//   - issuing br16 at its bound (cycle 8) forces br3 to cycle 5 or later;
//   - issuing br3 at its bound (cycle 2) forces br16 to cycle 9 or later;
//   - the optimal schedule therefore depends on the side exit probability
//     P, with the crossover at P = w16/(w16+3·w3) = 25%.
//
// The pairwise bound exposes exactly this tradeoff.
func Figure4(sideProb float64) *model.Superblock {
	b := model.NewBuilder("figure4")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int(o0, o1)
	b.Branch(sideProb, o2) // op 3

	c1 := b.Int()
	c2 := b.Int(c1)
	c3 := b.Int(c2)
	c4 := b.Int(c3)
	c5 := b.Int(c4)
	c6 := b.Int(c5)
	c7 := b.Int(c6)
	// Fillers with tight deadlines at the head of the chain.
	f11 := b.Int()
	b.Dep(f11, c2)
	f12 := b.Int()
	b.Dep(f12, c3)
	f13 := b.Int()
	b.Dep(f13, c4)
	f14 := b.Int()
	f15 := b.Int()
	b.Branch(0, c7, f14, f15) // op 16
	return b.MustBuild()
}

// Figure6 is the ERC example of Section 5.1: branch 8 has eight
// predecessors on GP2, so the flat ⌈8/2⌉ bound allows cycle 4, but five of
// them must issue within the first two cycles (four slots), forcing branch
// 8 to cycle 5. The paper's drawing is not reproduced in the text; this
// graph preserves the stated property that a windowed elementary resource
// constraint (ERC) is tighter than the flat count bound.
//
// Structure: op 0 feeds the branch directly; ops 1-5 all feed op 6, whose
// chain 6 -> 7 -> br8 gives them a late time of 1 when br8 targets cycle 4.
func Figure6() *model.Superblock {
	b := model.NewBuilder("figure6")
	o0 := b.Int()
	o1 := b.Int()
	o2 := b.Int()
	o3 := b.Int()
	o4 := b.Int()
	o5 := b.Int()
	o6 := b.Int(o1, o2, o3, o4, o5)
	o7 := b.Int(o6)
	b.Branch(0, o0, o7)
	return b.MustBuild()
}
