package figures

import (
	"testing"

	"balance/internal/model"
)

func TestAllFiguresValid(t *testing.T) {
	cases := []*model.Superblock{
		Figure1(0.25), Figure2(0.3), Figure3(0.2), Figure4(0.26), Figure6(),
	}
	for _, sb := range cases {
		if err := sb.Validate(); err != nil {
			t.Errorf("%s: %v", sb.Name, err)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	sb := Figure1(0.25)
	if sb.G.NumOps() != 17 {
		t.Errorf("figure 1 has %d ops, want 17", sb.G.NumOps())
	}
	if sb.NumBranches() != 2 {
		t.Fatalf("figure 1 has %d exits", sb.NumBranches())
	}
	// The paper: br16 has 16 predecessors and a dependence height of 7.
	last := sb.Branches[1]
	if n := sb.G.PredClosure(last).Count(); n != 16 {
		t.Errorf("final exit has %d predecessors, want 16", n)
	}
	if e := sb.G.EarlyDC()[last]; e != 7 {
		t.Errorf("final exit dependence early = %d, want 7", e)
	}
	// The side exit has three independent predecessors.
	side := sb.Branches[0]
	if n := sb.G.PredClosure(side).Count(); n != 3 {
		t.Errorf("side exit has %d predecessors, want 3", n)
	}
}

func TestFigure2Shape(t *testing.T) {
	sb := Figure2(0.3)
	// Branch 6 has 6 predecessors; op 4 starts a 3-cycle chain to it.
	last := sb.Branches[1]
	if n := sb.G.PredClosure(last).Count(); n != 6 {
		t.Errorf("final exit has %d predecessors, want 6", n)
	}
	dist := sb.G.LongestToTarget(last)
	if dist[4] != 3 {
		t.Errorf("chain 4->br6 = %d cycles, want 3", dist[4])
	}
}

func TestFigure3Shape(t *testing.T) {
	sb := Figure3(0.2)
	last := sb.Branches[1]
	if n := sb.G.PredClosure(last).Count(); n != 9 {
		t.Errorf("final exit has %d predecessors, want 9", n)
	}
	// The paper: the longest dependence chain 4 -> br9 is only 4 cycles.
	dist := sb.G.LongestToTarget(last)
	if dist[4] != 4 {
		t.Errorf("dependence distance 4->br9 = %d, want 4", dist[4])
	}
}

func TestFigure4Shape(t *testing.T) {
	sb := Figure4(0.26)
	if sb.G.NumOps() != 17 {
		t.Errorf("figure 4 has %d ops, want 17", sb.G.NumOps())
	}
	last := sb.Branches[1]
	if n := sb.G.PredClosure(last).Count(); n != 16 {
		t.Errorf("final exit has %d predecessors, want 16", n)
	}
	if e := sb.G.EarlyDC()[last]; e != 7 {
		t.Errorf("final exit dependence early = %d, want 7", e)
	}
	// Block 1 is now a chain: EarlyDC of the side exit is still 2 but its
	// three predecessors are no longer independent.
	side := sb.Branches[0]
	if e := sb.G.EarlyDC()[side]; e != 2 {
		t.Errorf("side exit dependence early = %d, want 2", e)
	}
	if len(sb.G.Preds(2)) != 2 {
		t.Errorf("op 2 should depend on ops 0 and 1")
	}
}

func TestFigureProbabilities(t *testing.T) {
	sb := Figure1(0.3)
	if sb.Prob[0] != 0.3 || sb.Prob[1] != 0.7 {
		t.Errorf("probabilities = %v", sb.Prob)
	}
}
